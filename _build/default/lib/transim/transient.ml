open Linalg

type integration = Backward_euler | Trapezoidal

type result = {
  sys : Circuit.Mna.t;
  times : float array;
  states : Vec.t array;
}

let simulate ?(integration = Trapezoidal) ?initial sys ~t_stop ~steps =
  if t_stop <= 0. then invalid_arg "Transient.simulate: t_stop must be > 0";
  if steps < 1 then invalid_arg "Transient.simulate: steps must be >= 1";
  let g = Circuit.Mna.g sys in
  let c = Circuit.Mna.c sys in
  let b = Circuit.Mna.b sys in
  let h = t_stop /. float_of_int steps in
  let op0 =
    match initial with Some op -> op | None -> Circuit.Dc.initial sys
  in
  let x0 = Vec.copy op0.Circuit.Dc.x in
  (* backward Euler: (C + h G) x' = C x + h B u(t')            *)
  (* trapezoidal:   (C + h/2 G) x' = (C - h/2 G) x + h/2 B (u + u') *)
  let lhs_be = Matrix.add c (Matrix.scale h g) in
  let f_be = Lu.factor lhs_be in
  let f_tr =
    match integration with
    | Backward_euler -> f_be
    | Trapezoidal -> Lu.factor (Matrix.add c (Matrix.scale (h /. 2.) g))
  in
  let c_minus = Matrix.sub c (Matrix.scale (h /. 2.) g) in
  let times = Array.init (steps + 1) (fun i -> h *. float_of_int i) in
  let states = Array.make (steps + 1) x0 in
  let bu t = Matrix.mul_vec b (Circuit.Mna.u_at sys t) in
  for i = 1 to steps do
    let t = times.(i) in
    let x_prev = states.(i - 1) in
    let x_next =
      match integration with
      | Backward_euler ->
        Lu.solve f_be (Vec.add (Matrix.mul_vec c x_prev) (Vec.scale h (bu t)))
      | Trapezoidal ->
        if i = 1 then
          (* BE start step: robust to the t = 0 input discontinuity *)
          Lu.solve f_be
            (Vec.add (Matrix.mul_vec c x_prev) (Vec.scale h (bu t)))
        else
          Lu.solve f_tr
            (Vec.add
               (Matrix.mul_vec c_minus x_prev)
               (Vec.scale (h /. 2.) (Vec.add (bu times.(i - 1)) (bu t))))
    in
    states.(i) <- x_next
  done;
  { sys; times; states }

let node_waveform r node =
  Waveform.create r.times
    (Array.map (fun x -> Circuit.Mna.voltage r.sys x node) r.states)

let branch_current_waveform r elem_idx =
  match Circuit.Mna.branch_var r.sys elem_idx with
  | None ->
    invalid_arg "Transient.branch_current_waveform: element has no branch"
  | Some bv ->
    Waveform.create r.times (Array.map (fun x -> x.(bv)) r.states)

let voltage_across r elem_idx =
  let ckt = Circuit.Mna.circuit r.sys in
  let e = ckt.Circuit.Netlist.elements.(elem_idx) in
  match Circuit.Element.nodes e with
  | np :: nn :: _ ->
    Waveform.create r.times
      (Array.map
         (fun x ->
           Circuit.Mna.voltage r.sys x np -. Circuit.Mna.voltage r.sys x nn)
         r.states)
  | _ -> invalid_arg "Transient.voltage_across: element has no terminals"

let simulate_adaptive ?initial ?(tol = 1e-4) ?dt_min ?dt_max sys ~t_stop =
  if t_stop <= 0. then
    invalid_arg "Transient.simulate_adaptive: t_stop must be > 0";
  let dt_min = Option.value dt_min ~default:(t_stop /. 1e7) in
  let dt_max = Option.value dt_max ~default:(t_stop /. 50.) in
  if dt_min <= 0. || dt_max < dt_min then
    invalid_arg "Transient.simulate_adaptive: bad step bounds";
  let g = Circuit.Mna.g sys in
  let c = Circuit.Mna.c sys in
  let b = Circuit.Mna.b sys in
  let op0 =
    match initial with Some op -> op | None -> Circuit.Dc.initial sys
  in
  let bu t = Matrix.mul_vec b (Circuit.Mna.u_at sys t) in
  (* factorization cache: companion matrices for the current step *)
  let cache = Hashtbl.create 8 in
  let factor_for h =
    match Hashtbl.find_opt cache h with
    | Some f -> f
    | None ->
      let f = Lu.factor (Matrix.add c (Matrix.scale (h /. 2.) g)) in
      if Hashtbl.length cache > 32 then Hashtbl.reset cache;
      Hashtbl.replace cache h f;
      f
  in
  let c_minus h = Matrix.sub c (Matrix.scale (h /. 2.) g) in
  let tr_step x t h =
    let f = factor_for h in
    Lu.solve f
      (Vec.add
         (Matrix.mul_vec (c_minus h) x)
         (Vec.scale (h /. 2.) (Vec.add (bu t) (bu (t +. h)))))
  in
  let be_step x t h =
    let f = Lu.factor (Matrix.add c (Matrix.scale h g)) in
    Lu.solve f (Vec.add (Matrix.mul_vec c x) (Vec.scale h (bu (t +. h))))
  in
  let times = ref [ 0. ] in
  let states = ref [ Vec.copy op0.Circuit.Dc.x ] in
  let scale0 = Float.max 1. (Vec.norm_inf op0.Circuit.Dc.x) in
  (* BE start step over dt_min to get past the t = 0 discontinuity *)
  let t = ref dt_min in
  let x = ref (be_step op0.Circuit.Dc.x 0. dt_min) in
  times := !t :: !times;
  states := !x :: !states;
  let h = ref (Float.min dt_max (dt_min *. 100.)) in
  while !t < t_stop -. 1e-30 do
    let h_eff = Float.min !h (t_stop -. !t) in
    let full = tr_step !x !t h_eff in
    let half = tr_step !x !t (h_eff /. 2.) in
    let two = tr_step half (!t +. (h_eff /. 2.)) (h_eff /. 2.) in
    let scale = Float.max scale0 (Vec.norm_inf two) in
    let err = Vec.dist_inf full two /. scale in
    if err <= tol || h_eff <= dt_min *. 1.0000001 then begin
      (* accept the more accurate two-half-steps solution *)
      t := !t +. h_eff;
      x := two;
      times := !t :: !times;
      states := !x :: !states;
      (* grow cautiously; LTE of TR is O(h^3) *)
      let grow =
        if err = 0. then 2.
        else Float.min 2. (0.9 *. Float.pow (tol /. err) (1. /. 3.))
      in
      h := Float.min dt_max (Float.max dt_min (h_eff *. Float.max 0.5 grow))
    end
    else h := Float.max dt_min (h_eff /. 2.)
  done;
  { sys;
    times = Array.of_list (List.rev !times);
    states = Array.of_list (List.rev !states) }
