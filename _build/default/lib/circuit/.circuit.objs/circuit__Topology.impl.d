lib/circuit/topology.ml: Array Element Format Hashtbl List Netlist Sparse
