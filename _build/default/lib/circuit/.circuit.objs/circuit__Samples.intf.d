lib/circuit/samples.mli: Element Netlist
