lib/circuit/dc.ml: Array Element Hashtbl Linalg List Mna Netlist String Vec
