lib/circuit/netlist.ml: Array Element Float Format Hashtbl List Printf String
