lib/circuit/element.mli: Format
