lib/circuit/mna.ml: Array Cholesky Element Linalg List Lu Matrix Netlist Sparse String Topology Vec
