lib/circuit/topology.mli: Element Format Netlist Sparse
