lib/circuit/element.ml: Format List Printf
