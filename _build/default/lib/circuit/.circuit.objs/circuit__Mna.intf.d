lib/circuit/mna.mli: Element Linalg Netlist Sparse
