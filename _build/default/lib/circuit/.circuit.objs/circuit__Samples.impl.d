lib/circuit/samples.ml: Array Element Netlist Printf Random
