lib/circuit/parser.ml: Array Buffer Char Element Fun Hashtbl List Netlist Option Printf String
