lib/circuit/dc.mli: Linalg Mna
