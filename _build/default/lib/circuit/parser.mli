(** SPICE-style netlist deck parser.

    Accepted element cards (names are case-insensitive; the first
    letter selects the element type, as in SPICE):

    {v
    R<name> <n+> <n-> <value>
    C<name> <n+> <n-> <value> [IC=<v>]
    L<name> <n+> <n-> <value> [IC=<i>]
    V<name> <n+> <n-> <waveform>
    I<name> <n+> <n-> <waveform>
    E<name> <n+> <n-> <cp> <cn> <gain>      VCVS
    G<name> <n+> <n-> <cp> <cn> <gm>        VCCS
    H<name> <n+> <n-> <vsrc> <r>            CCVS
    F<name> <n+> <n-> <vsrc> <gain>         CCCS
    v}

    Waveforms: a bare number or [DC <v>]; [STEP(<v0> <v1>)] (ideal step
    at t = 0); [RAMP(<v0> <v1> <tdelay> <trise>)]; and
    [PWL(t1 v1 t2 v2 ...)].

    Values accept the SPICE magnitude suffixes
    [f p n u m k meg g t] and trailing unit letters ([1k], [2.2meg],
    [100nF], [4ohm]).

    Lines starting with [*] (or anything after [;]) are comments; a
    line starting with [+] continues the previous card.  Directives:
    [.ic v(<node>)=<value>] assigns the initial condition of the
    grounded capacitor at a node, [.tran <tstop> [steps]] and
    [.awe <node> [order]] are collected for the driver, [.end] stops
    parsing. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

type directive =
  | Tran of { t_stop : float; steps : int option }
  | Awe_node of { node : string; order : int option }

type deck = {
  circuit : Netlist.circuit;
  directives : directive list;
  title : string option;  (** first line when it is not a card *)
}

val parse_string : string -> deck

val parse_file : string -> deck

val parse_value : string -> float option
(** Parse one SPICE-suffixed number ("2.2k" -> 2200.). *)

val print_deck : ?title:string -> Netlist.circuit -> string
(** Serialize a circuit back to deck text.  The output parses back to a
    structurally identical circuit ([parse_string (print_deck c)] has
    the same elements, nodes, values, waveforms and initial
    conditions). *)
