(** Operating-point analysis.

    AWE needs two DC-type solutions before any moment is computed
    (paper, eq. 8): the state at [t = 0-] (sources at their pre-step
    values, explicit initial conditions enforced) fixing every capacitor
    voltage and inductor current, and the consistent solution at
    [t = 0+] (sources stepped, storage elements pinned to their 0-
    state) fixing the algebraic MNA variables.

    Both are computed on an auxiliary DC circuit in which capacitors
    become voltage sources (when pinned) or opens, and inductors become
    current sources (when pinned) or shorts — exactly the paper's
    "capacitors replaced by current sources / voltage sources"
    construction of Figs. 5 and 11.  Nodes left floating by the
    substitution (a capacitor-only island with no initial condition)
    default to 0 V. *)

type op = {
  x : Linalg.Vec.t;
      (** solution mapped onto the main MNA unknown layout: node
          voltages and branch currents *)
  cap_v : (int * float) array;
      (** capacitor element index -> voltage [v(np) - v(nn)] *)
  cap_i : (int * float) array;
      (** capacitor element index -> current [np -> nn]; zero at an
          equilibrium 0- point, generally nonzero at 0+ *)
  ind_i : (int * float) array;  (** inductor element index -> current *)
  ind_v : (int * float) array;  (** inductor element index -> voltage *)
}

val initial : Mna.t -> op
(** The [t = 0-] point: independent sources at their pre-transition
    values, capacitor/inductor initial conditions enforced where given,
    remaining capacitors open and inductors short.  Raises
    [Mna.Singular_dc] when no unique point exists. *)

val at_zero_plus : Mna.t -> op -> op
(** The consistent [t = 0+] point: sources at their [0+] values, every
    capacitor pinned to its voltage in the given 0- point and every
    inductor to its current. *)
