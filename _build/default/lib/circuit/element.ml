type node = int

let ground = 0

type waveform =
  | Dc of float
  | Step of { v0 : float; v1 : float }
  | Ramp of { v0 : float; v1 : float; t_delay : float; t_rise : float }
  | Pwl of (float * float) list

let eval wave t =
  match wave with
  | Dc v -> v
  | Step { v0; v1 } -> if t < 0. then v0 else v1
  | Ramp { v0; v1; t_delay; t_rise } ->
    if t <= t_delay then v0
    else if t >= t_delay +. t_rise then v1
    else v0 +. ((v1 -. v0) *. (t -. t_delay) /. t_rise)
  | Pwl [] -> 0.
  | Pwl ((t0, y0) :: _) when t <= t0 -> y0
  | Pwl points ->
    let rec go = function
      | [ (_, y) ] -> y
      | (t1, y1) :: ((t2, y2) :: _ as rest) ->
        if t <= t2 then y1 +. ((y2 -. y1) *. (t -. t1) /. (t2 -. t1))
        else go rest
      | [] -> assert false
    in
    go points

type canonical = {
  pre : float;
  v0 : float;
  slope0 : float;
  breaks : (float * float) list;
}

let validate_pwl points =
  let rec check = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
      if t2 <= t1 then
        invalid_arg "Element: PWL times must be strictly increasing";
      check rest
    | _ -> ()
  in
  check points

let canonicalize = function
  | Dc v -> { pre = v; v0 = v; slope0 = 0.; breaks = [] }
  | Step { v0; v1 } -> { pre = v0; v0 = v1; slope0 = 0.; breaks = [] }
  | Ramp { v0; v1; t_delay; t_rise } ->
    if t_rise <= 0. then
      invalid_arg "Element: ramp rise time must be positive";
    if t_delay < 0. then invalid_arg "Element: ramp delay must be >= 0";
    let r = (v1 -. v0) /. t_rise in
    if t_delay = 0. then
      { pre = v0; v0; slope0 = r; breaks = [ (t_rise, -.r) ] }
    else
      { pre = v0;
        v0;
        slope0 = 0.;
        breaks = [ (t_delay, r); (t_delay +. t_rise, -.r) ] }
  | Pwl points ->
    validate_pwl points;
    let value_at t = eval (Pwl points) t in
    let pre = value_at 0. in
    (* slope of each segment, as (start_time, slope) pairs, plus the
       trailing constant segment *)
    let segments =
      let rec go acc = function
        | (t1, y1) :: ((t2, y2) :: _ as rest) ->
          go ((t1, (y2 -. y1) /. (t2 -. t1)) :: acc) rest
        | [ (t_last, _) ] -> List.rev ((t_last, 0.) :: acc)
        | [] -> []
      in
      go [] points
    in
    (* slope at 0+ and subsequent slope changes at positive times *)
    let slope_at t =
      let rec go current = function
        | (ts, s) :: rest -> if ts <= t then go s rest else current
        | [] -> current
      in
      go 0. segments
    in
    let slope0 = slope_at 0. in
    let breaks =
      let rec go current acc = function
        | (ts, s) :: rest ->
          if ts <= 0. then go s acc rest
          else if s <> current then go s ((ts, s -. current) :: acc) rest
          else go current acc rest
        | [] -> List.rev acc
      in
      go slope0 [] segments
    in
    { pre; v0 = pre; slope0; breaks }

let eval_canonical c t =
  if t < 0. then c.pre
  else begin
    let v = ref (c.v0 +. (c.slope0 *. t)) in
    List.iter
      (fun (tk, dr) -> if t > tk then v := !v +. (dr *. (t -. tk)))
      c.breaks;
    !v
  end

type t =
  | Resistor of { name : string; np : node; nn : node; r : float }
  | Capacitor of {
      name : string;
      np : node;
      nn : node;
      c : float;
      ic : float option;
    }
  | Inductor of {
      name : string;
      np : node;
      nn : node;
      l : float;
      ic : float option;
    }
  | Vsource of { name : string; np : node; nn : node; wave : waveform }
  | Isource of { name : string; np : node; nn : node; wave : waveform }
  | Vcvs of {
      name : string;
      np : node;
      nn : node;
      cp : node;
      cn : node;
      gain : float;
    }
  | Vccs of {
      name : string;
      np : node;
      nn : node;
      cp : node;
      cn : node;
      gm : float;
    }
  | Ccvs of { name : string; np : node; nn : node; vctrl : string; r : float }
  | Cccs of {
      name : string;
      np : node;
      nn : node;
      vctrl : string;
      gain : float;
    }
  | Mutual of { name : string; l1 : string; l2 : string; k : float }

let name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vcvs { name; _ }
  | Vccs { name; _ }
  | Ccvs { name; _ }
  | Cccs { name; _ }
  | Mutual { name; _ } -> name

let nodes = function
  | Resistor { np; nn; _ }
  | Capacitor { np; nn; _ }
  | Inductor { np; nn; _ }
  | Vsource { np; nn; _ }
  | Isource { np; nn; _ }
  | Ccvs { np; nn; _ }
  | Cccs { np; nn; _ } -> [ np; nn ]
  | Vcvs { np; nn; cp; cn; _ } | Vccs { np; nn; cp; cn; _ } ->
    [ np; nn; cp; cn ]
  | Mutual _ -> []

let is_storage = function
  | Capacitor _ | Inductor _ | Mutual _ -> true
  | Resistor _ | Vsource _ | Isource _ | Vcvs _ | Vccs _ | Ccvs _ | Cccs _ ->
    false

let pp ppf e =
  match e with
  | Resistor { name; np; nn; r } ->
    Format.fprintf ppf "%s %d %d R=%.6g" name np nn r
  | Capacitor { name; np; nn; c; ic } ->
    Format.fprintf ppf "%s %d %d C=%.6g%s" name np nn c
      (match ic with None -> "" | Some v -> Printf.sprintf " ic=%.6g" v)
  | Inductor { name; np; nn; l; ic } ->
    Format.fprintf ppf "%s %d %d L=%.6g%s" name np nn l
      (match ic with None -> "" | Some v -> Printf.sprintf " ic=%.6g" v)
  | Vsource { name; np; nn; _ } -> Format.fprintf ppf "%s %d %d V" name np nn
  | Isource { name; np; nn; _ } -> Format.fprintf ppf "%s %d %d I" name np nn
  | Vcvs { name; np; nn; cp; cn; gain } ->
    Format.fprintf ppf "%s %d %d (%d,%d) E=%.6g" name np nn cp cn gain
  | Vccs { name; np; nn; cp; cn; gm } ->
    Format.fprintf ppf "%s %d %d (%d,%d) G=%.6g" name np nn cp cn gm
  | Ccvs { name; np; nn; vctrl; r } ->
    Format.fprintf ppf "%s %d %d i(%s) H=%.6g" name np nn vctrl r
  | Cccs { name; np; nn; vctrl; gain } ->
    Format.fprintf ppf "%s %d %d i(%s) F=%.6g" name np nn vctrl gain
  | Mutual { name; l1; l2; k } ->
    Format.fprintf ppf "%s %s %s K=%.6g" name l1 l2 k
