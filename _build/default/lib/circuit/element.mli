(** Circuit elements and source waveforms.

    The element set is the paper's scope: linear R, L, C, independent
    voltage/current sources, and the four linear controlled sources
    (paper, Section I: "floating capacitors, grounded resistors,
    inductors, and even linear controlled sources").  Nodes are integer
    ids with [0] the ground node. *)

type node = int

val ground : node

type waveform =
  | Dc of float  (** constant for all time *)
  | Step of { v0 : float; v1 : float }
      (** value [v0] for [t < 0], [v1] for [t >= 0]: the ideal step at
          the time origin used throughout the paper's examples *)
  | Ramp of { v0 : float; v1 : float; t_delay : float; t_rise : float }
      (** [v0] until [t_delay], then linear to [v1] over [t_rise > 0],
          then constant — the paper's "step with finite rise time"
          (Section 4.3, Fig. 13) *)
  | Pwl of (float * float) list
      (** piecewise linear [(time, value)] with strictly increasing
          times; constant before the first and after the last point *)

val eval : waveform -> float -> float
(** Waveform value at a time [t]; for [Step], [t = 0.] evaluates to
    [v1]. *)

(** Canonical decomposition of a waveform for AWE: an initial jump at
    [t = 0] plus a train of slope changes.  Any response is then the
    superposition of one step-from-initial-conditions transient and one
    shifted, scaled unit-ramp transient per slope break (the paper's
    ramp superposition, eqs. 63-66, generalized to PWL). *)
type canonical = {
  pre : float;  (** value at [t = 0-], fixing initial conditions *)
  v0 : float;  (** value at [t = 0+] *)
  slope0 : float;  (** slope on [0+, first break) *)
  breaks : (float * float) list;
      (** [(t_k, dr_k)]: at time [t_k > 0] the slope changes by [dr_k];
          sorted by time *)
}

val canonicalize : waveform -> canonical
(** Raises [Invalid_argument] on malformed waveforms (non-increasing
    PWL times, non-positive rise time). *)

val eval_canonical : canonical -> float -> float
(** Reconstruct the waveform value from its canonical form (for
    [t >= 0]); used to cross-check the decomposition. *)

type t =
  | Resistor of { name : string; np : node; nn : node; r : float }
  | Capacitor of {
      name : string;
      np : node;
      nn : node;
      c : float;
      ic : float option;  (** initial voltage [v(np) - v(nn)] at 0- *)
    }
  | Inductor of {
      name : string;
      np : node;
      nn : node;
      l : float;
      ic : float option;  (** initial current [np -> nn] at 0- *)
    }
  | Vsource of { name : string; np : node; nn : node; wave : waveform }
  | Isource of { name : string; np : node; nn : node; wave : waveform }
      (** current of value [wave t] flowing [np -> nn] through the
          source *)
  | Vcvs of {
      name : string;
      np : node;
      nn : node;
      cp : node;
      cn : node;
      gain : float;
    }  (** E element: [v(np)-v(nn) = gain * (v(cp)-v(cn))] *)
  | Vccs of {
      name : string;
      np : node;
      nn : node;
      cp : node;
      cn : node;
      gm : float;
    }  (** G element: current [gm * (v(cp)-v(cn))] flows [np -> nn] *)
  | Ccvs of {
      name : string;
      np : node;
      nn : node;
      vctrl : string;
      r : float;
    }  (** H element: [v(np)-v(nn) = r * i(vctrl)] *)
  | Cccs of {
      name : string;
      np : node;
      nn : node;
      vctrl : string;
      gain : float;
    }  (** F element: current [gain * i(vctrl)] flows [np -> nn] *)
  | Mutual of { name : string; l1 : string; l2 : string; k : float }
      (** K element: mutual coupling between two named inductors with
          coefficient [0 < k < 1]; adds [M = k sqrt(L1 L2)] to the
          energy-storage matrix — the printed-circuit-board inductive
          coupling the paper's introduction motivates *)

val name : t -> string

val nodes : t -> node list
(** All nodes the element touches (including controlling nodes). *)

val is_storage : t -> bool
(** True for capacitors and inductors. *)

val pp : Format.formatter -> t -> unit
