type properties = {
  is_rc_tree : bool;
  has_floating_caps : bool;
  has_grounded_resistors : bool;
  has_resistor_loops : bool;
  has_inductors : bool;
  has_controlled_sources : bool;
  floating_groups : Element.node list list;
}

let conductive_edge e =
  match e with
  | Element.Resistor { np; nn; _ }
  | Element.Inductor { np; nn; _ }
  | Element.Vsource { np; nn; _ }
  | Element.Vcvs { np; nn; _ }
  | Element.Ccvs { np; nn; _ } -> Some (np, nn)
  | Element.Capacitor _ | Element.Isource _ | Element.Vccs _
  | Element.Cccs _ | Element.Mutual _ -> None

let conductive_graph (c : Netlist.circuit) =
  let g = Sparse.Graph.create c.node_count in
  Array.iteri
    (fun idx e ->
      match conductive_edge e with
      | Some (a, b) -> Sparse.Graph.add_edge g a b ~label:idx
      | None -> ())
    c.elements;
  g

let floating_groups c =
  let g = conductive_graph c in
  let comp = Sparse.Graph.components g in
  let ground_comp = comp.(Element.ground) in
  let groups = Hashtbl.create 4 in
  Array.iteri
    (fun node id ->
      if id <> ground_comp then begin
        let members =
          match Hashtbl.find_opt groups id with Some l -> l | None -> []
        in
        Hashtbl.replace groups id (node :: members)
      end)
    comp;
  (* only groups actually touched by some element matter; interned but
     unused nodes cannot occur after [freeze] in practice *)
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
  |> List.sort compare

let rv_graph (c : Netlist.circuit) =
  (* resistors and independent voltage sources only: the skeleton whose
     loops the RC-tree definition forbids *)
  let g = Sparse.Graph.create c.node_count in
  Array.iteri
    (fun idx e ->
      match e with
      | Element.Resistor { np; nn; _ } | Element.Vsource { np; nn; _ } ->
        Sparse.Graph.add_edge g np nn ~label:idx
      | _ -> ())
    c.elements;
  g

let analyze (c : Netlist.circuit) =
  let has_floating_caps = ref false in
  let has_grounded_resistors = ref false in
  let has_inductors = ref false in
  let has_controlled_sources = ref false in
  let only_rcv = ref true in
  let all_caps_grounded = ref true in
  Array.iter
    (fun e ->
      match e with
      | Element.Capacitor { np; nn; _ } ->
        if np <> Element.ground && nn <> Element.ground then begin
          has_floating_caps := true;
          all_caps_grounded := false
        end
      | Element.Resistor { np; nn; _ } ->
        if np = Element.ground || nn = Element.ground then
          has_grounded_resistors := true
      | Element.Inductor _ ->
        has_inductors := true;
        only_rcv := false
      | Element.Vcvs _ | Element.Vccs _ | Element.Ccvs _ | Element.Cccs _ ->
        has_controlled_sources := true;
        only_rcv := false
      | Element.Isource _ -> only_rcv := false
      | Element.Mutual _ ->
        has_inductors := true;
        only_rcv := false
      | Element.Vsource _ -> ())
    c.elements;
  let has_resistor_loops = Sparse.Graph.has_cycle (rv_graph c) in
  let floating_groups = floating_groups c in
  let is_rc_tree =
    !only_rcv && !all_caps_grounded
    && (not !has_grounded_resistors)
    && (not has_resistor_loops)
    && floating_groups = []
  in
  { is_rc_tree;
    has_floating_caps = !has_floating_caps;
    has_grounded_resistors = !has_grounded_resistors;
    has_resistor_loops;
    has_inductors = !has_inductors;
    has_controlled_sources = !has_controlled_sources;
    floating_groups }

let spanning_tree c =
  Sparse.Graph.spanning_forest ~roots:[ Element.ground ] (conductive_graph c)

let rc_tree_parent c =
  let props = analyze c in
  if not props.is_rc_tree then
    invalid_arg "Topology.rc_tree_parent: circuit is not an RC tree";
  let forest = spanning_tree c in
  Array.map
    (fun edge ->
      match edge with
      | None -> None
      | Some { Sparse.Graph.parent; label; _ } -> (
        match c.Netlist.elements.(label) with
        | Element.Resistor { r; _ } -> Some (parent, r)
        | Element.Vsource _ -> Some (parent, 0.)
        | _ -> None))
    forest

let pp_properties ppf p =
  Format.fprintf ppf
    "@[<v>rc_tree=%b floating_caps=%b grounded_R=%b R_loops=%b inductors=%b \
     controlled=%b floating_groups=%d@]"
    p.is_rc_tree p.has_floating_caps p.has_grounded_resistors
    p.has_resistor_loops p.has_inductors p.has_controlled_sources
    (List.length p.floating_groups)
