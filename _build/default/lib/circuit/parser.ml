exception Parse_error of int * string

type directive =
  | Tran of { t_stop : float; steps : int option }
  | Awe_node of { node : string; order : int option }

type deck = {
  circuit : Netlist.circuit;
  directives : directive list;
  title : string option;
}

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

(* ------------------------------------------------------------------ *)
(* values with SPICE suffixes *)

let suffixes =
  [ ("meg", 1e6); ("mil", 25.4e-6); ("t", 1e12); ("g", 1e9); ("k", 1e3);
    ("m", 1e-3); ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15) ]

let parse_value raw =
  let s = String.lowercase_ascii (String.trim raw) in
  if s = "" then None
  else begin
    (* split the numeric prefix from the alphabetic tail *)
    let n = String.length s in
    let i = ref 0 in
    let numeric c =
      (c >= '0' && c <= '9') || c = '.' || c = '+' || c = '-' || c = 'e'
    in
    (* consume mantissa; 'e' only counts as numeric when followed by a
       digit or sign (exponent), otherwise it starts the suffix *)
    while
      !i < n
      &&
      let c = s.[!i] in
      numeric c
      && (c <> 'e'
         || (!i + 1 < n
            &&
            let d = s.[!i + 1] in
            (d >= '0' && d <= '9') || d = '+' || d = '-'))
    do
      incr i
    done;
    let num = String.sub s 0 !i in
    let tail = String.sub s !i (n - !i) in
    match float_of_string_opt num with
    | None -> None
    | Some v ->
      let mult =
        let rec pick = function
          | [] -> Some 1. (* bare units like "ohm", "v", "hz" *)
          | (suf, m) :: rest ->
            if String.length tail >= String.length suf
               && String.sub tail 0 (String.length suf) = suf
            then Some m
            else pick rest
        in
        if tail = "" then Some 1. else pick suffixes
      in
      Option.map (fun m -> v *. m) mult
  end

(* ------------------------------------------------------------------ *)
(* tokenization: join continuations, strip comments, split respecting
   parentheses so PWL(0 0 1n 5) is one token group *)

let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let numbered = List.mapi (fun i l -> (i + 1, l)) raw in
  let strip_comment l =
    match String.index_opt l ';' with
    | Some i -> String.sub l 0 i
    | None -> l
  in
  let rec join acc = function
    | [] -> List.rev acc
    | (ln, l) :: rest ->
      let l = strip_comment l in
      let trimmed = String.trim l in
      if trimmed = "" || trimmed.[0] = '*' then join acc rest
      else if trimmed.[0] = '+' then begin
        match acc with
        | (ln0, prev) :: acc' ->
          join
            ((ln0, prev ^ " " ^ String.sub trimmed 1 (String.length trimmed - 1))
            :: acc')
            rest
        | [] -> fail ln "continuation line with nothing to continue"
      end
      else join ((ln, trimmed) :: acc) rest
  in
  join [] numbered

(* split a card into tokens; parenthesized argument lists stay attached
   to their keyword: "pwl(0 0 1n 5)" is one token *)
let tokenize line s =
  let n = String.length s in
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        if !depth < 0 then fail line "unbalanced parentheses";
        Buffer.add_char buf c
      | ' ' | '\t' | ',' | '\r' ->
        if !depth > 0 then Buffer.add_char buf ' ' else flush ()
      | '=' ->
        (* keep key=value together *)
        Buffer.add_char buf '='
      | c -> Buffer.add_char buf c)
    s;
  if !depth <> 0 then fail line "unbalanced parentheses";
  flush ();
  ignore n;
  List.rev !tokens

let value_exn line tok =
  match parse_value tok with
  | Some v -> v
  | None -> fail line "cannot parse value %S" tok

(* waveform tokens: either ["5"], ["dc"; "5"], or one function token *)
let parse_waveform line tokens =
  let fn_args tok =
    (* "pwl(0 0 1n 5)" -> ("pwl", ["0";"0";"1n";"5"]) *)
    match String.index_opt tok '(' with
    | None -> None
    | Some i ->
      let name = String.lowercase_ascii (String.sub tok 0 i) in
      let inner = String.sub tok (i + 1) (String.length tok - i - 2) in
      let args =
        String.split_on_char ' ' inner |> List.filter (fun s -> s <> "")
      in
      Some (name, args)
  in
  match tokens with
  | [ tok ] -> (
    match fn_args tok with
    | None -> Element.Dc (value_exn line tok)
    | Some ("step", [ v0; v1 ]) ->
      Element.Step { v0 = value_exn line v0; v1 = value_exn line v1 }
    | Some ("ramp", [ v0; v1; td; tr ]) ->
      Element.Ramp
        { v0 = value_exn line v0;
          v1 = value_exn line v1;
          t_delay = value_exn line td;
          t_rise = value_exn line tr }
    | Some ("pwl", args) ->
      if List.length args < 2 || List.length args mod 2 <> 0 then
        fail line "PWL needs an even number of arguments";
      let rec pairs = function
        | [] -> []
        | t :: v :: rest -> (value_exn line t, value_exn line v) :: pairs rest
        | [ _ ] -> assert false
      in
      Element.Pwl (pairs args)
    | Some (name, _) -> fail line "unknown waveform %S" name)
  | [ dc; v ] when String.lowercase_ascii dc = "dc" ->
    Element.Dc (value_exn line v)
  | _ -> fail line "cannot parse source waveform"

let split_params tokens =
  (* separate positional tokens from key=value parameters *)
  List.partition (fun t -> not (String.contains t '=')) tokens

let param_ic line params =
  List.fold_left
    (fun acc p ->
      match String.split_on_char '=' p with
      | [ k; v ] when String.lowercase_ascii k = "ic" -> (
        match acc with
        | Some _ -> fail line "duplicate IC parameter"
        | None -> Some (value_exn line v))
      | _ -> fail line "unknown parameter %S" p)
    None params

(* .ic v(node)=value *)
let parse_ic_directive line tok =
  let low = String.lowercase_ascii tok in
  match String.index_opt low '=' with
  | None -> fail line ".ic expects v(<node>)=<value>"
  | Some eq ->
    let lhs = String.sub low 0 eq in
    let rhs = String.sub tok (eq + 1) (String.length tok - eq - 1) in
    if String.length lhs < 4 || String.sub lhs 0 2 <> "v(" || lhs.[String.length lhs - 1] <> ')'
    then fail line ".ic expects v(<node>)=<value>";
    let node = String.sub lhs 2 (String.length lhs - 3) in
    (node, value_exn line rhs)

let parse_string text =
  let lines = logical_lines text in
  let b = Netlist.create () in
  let directives = ref [] in
  let pending_ics = ref [] in
  let title = ref None in
  let handle_card is_first (line, text) =
    let tokens = tokenize line text in
    match tokens with
    | [] -> ()
    | head :: rest -> (
      let kind = Char.lowercase_ascii head.[0] in
      match kind with
      | '.' -> (
        match String.lowercase_ascii head :: rest with
        | ".end" :: _ -> ()
        | ".ic" :: args ->
          List.iter
            (fun a -> pending_ics := (line, parse_ic_directive line a) :: !pending_ics)
            args
        | ".tran" :: args -> (
          match args with
          | [ t ] ->
            directives :=
              Tran { t_stop = value_exn line t; steps = None } :: !directives
          | [ t; s ] ->
            directives :=
              Tran
                { t_stop = value_exn line t;
                  steps = Some (int_of_float (value_exn line s)) }
              :: !directives
          | _ -> fail line ".tran expects <tstop> [steps]")
        | ".awe" :: args -> (
          match args with
          | [ node ] ->
            directives := Awe_node { node; order = None } :: !directives
          | [ node; q ] ->
            directives :=
              Awe_node { node; order = Some (int_of_float (value_exn line q)) }
              :: !directives
          | _ -> fail line ".awe expects <node> [order]")
        | d :: _ -> fail line "unknown directive %S" d
        | [] -> ())
      | 'r' -> (
        match rest with
        | [ np; nn; v ] -> Netlist.add_r b head np nn (value_exn line v)
        | _ -> fail line "R card: R<name> <n+> <n-> <value>")
      | 'c' -> (
        let pos, params = split_params rest in
        match pos with
        | [ np; nn; v ] ->
          Netlist.add_c ?ic:(param_ic line params) b head np nn
            (value_exn line v)
        | _ -> fail line "C card: C<name> <n+> <n-> <value> [IC=v]")
      | 'l' -> (
        let pos, params = split_params rest in
        match pos with
        | [ np; nn; v ] ->
          Netlist.add_l ?ic:(param_ic line params) b head np nn
            (value_exn line v)
        | _ -> fail line "L card: L<name> <n+> <n-> <value> [IC=i]")
      | 'v' -> (
        match rest with
        | np :: nn :: wave when wave <> [] ->
          Netlist.add_v b head np nn (parse_waveform line wave)
        | _ -> fail line "V card: V<name> <n+> <n-> <waveform>")
      | 'i' -> (
        match rest with
        | np :: nn :: wave when wave <> [] ->
          Netlist.add_i b head np nn (parse_waveform line wave)
        | _ -> fail line "I card: I<name> <n+> <n-> <waveform>")
      | 'e' -> (
        match rest with
        | [ np; nn; cp; cn; g ] ->
          Netlist.add_vcvs b head np nn cp cn (value_exn line g)
        | _ -> fail line "E card: E<name> <n+> <n-> <cp> <cn> <gain>")
      | 'g' -> (
        match rest with
        | [ np; nn; cp; cn; g ] ->
          Netlist.add_vccs b head np nn cp cn (value_exn line g)
        | _ -> fail line "G card: G<name> <n+> <n-> <cp> <cn> <gm>")
      | 'h' -> (
        match rest with
        | [ np; nn; vsrc; r ] ->
          Netlist.add_ccvs b head np nn vsrc (value_exn line r)
        | _ -> fail line "H card: H<name> <n+> <n-> <vsrc> <r>")
      | 'f' -> (
        match rest with
        | [ np; nn; vsrc; g ] ->
          Netlist.add_cccs b head np nn vsrc (value_exn line g)
        | _ -> fail line "F card: F<name> <n+> <n-> <vsrc> <gain>")
      | 'k' -> (
        match rest with
        | [ l1; l2; k ] -> Netlist.add_k b head l1 l2 (value_exn line k)
        | _ -> fail line "K card: K<name> <l1> <l2> <k>")
      | _ ->
        if is_first then title := Some text
        else fail line "unknown card %S" head)
  in
  (match lines with
  | [] -> raise (Parse_error (0, "empty deck"))
  | first :: rest ->
    (* a first line that parses as a card is a card; otherwise a title *)
    (try handle_card true first
     with Parse_error _ -> title := Some (snd first));
    List.iter (handle_card false) rest);
  (* apply .ic node directives: attach to the grounded capacitor *)
  let elements_with_ics raw_circuit =
    match !pending_ics with
    | [] -> raw_circuit
    | ics ->
      let b2 = Netlist.create () in
      Array.iteri
        (fun i name ->
          if i > 0 then ignore (Netlist.node b2 name))
        raw_circuit.Netlist.node_names;
      let ic_for_node = Hashtbl.create 4 in
      List.iter
        (fun (line, (name, v)) ->
          match Netlist.find_node raw_circuit name with
          | Some n -> Hashtbl.replace ic_for_node n (line, v)
          | None -> fail line ".ic references unknown node %S" name)
        ics;
      let nm node = raw_circuit.Netlist.node_names.(node) in
      Array.iter
        (fun e ->
          match e with
          | Element.Capacitor { name; np; nn; c; ic } ->
            let ic =
              match ic with
              | Some _ -> ic
              | None ->
                if nn = Element.ground then
                  Option.map snd (Hashtbl.find_opt ic_for_node np)
                else if np = Element.ground then
                  Option.map (fun (_, v) -> -.v)
                    (Hashtbl.find_opt ic_for_node nn)
                else None
            in
            Netlist.add_c ?ic b2 name (nm np) (nm nn) c
          | Element.Resistor { name; np; nn; r } ->
            Netlist.add_r b2 name (nm np) (nm nn) r
          | Element.Inductor { name; np; nn; l; ic } ->
            Netlist.add_l ?ic b2 name (nm np) (nm nn) l
          | Element.Vsource { name; np; nn; wave } ->
            Netlist.add_v b2 name (nm np) (nm nn) wave
          | Element.Isource { name; np; nn; wave } ->
            Netlist.add_i b2 name (nm np) (nm nn) wave
          | Element.Vcvs { name; np; nn; cp; cn; gain } ->
            Netlist.add_vcvs b2 name (nm np) (nm nn) (nm cp) (nm cn) gain
          | Element.Vccs { name; np; nn; cp; cn; gm } ->
            Netlist.add_vccs b2 name (nm np) (nm nn) (nm cp) (nm cn) gm
          | Element.Ccvs { name; np; nn; vctrl; r } ->
            Netlist.add_ccvs b2 name (nm np) (nm nn) vctrl r
          | Element.Cccs { name; np; nn; vctrl; gain } ->
            Netlist.add_cccs b2 name (nm np) (nm nn) vctrl gain
          | Element.Mutual { name; l1; l2; k } ->
            Netlist.add_k b2 name l1 l2 k)
        raw_circuit.Netlist.elements;
      Netlist.freeze b2
  in
  let circuit = elements_with_ics (Netlist.freeze b) in
  { circuit; directives = List.rev !directives; title = !title }

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* serialization *)

let print_wave buf wave =
  match wave with
  | Element.Dc v -> Buffer.add_string buf (Printf.sprintf "dc %.17g" v)
  | Element.Step { v0; v1 } ->
    Buffer.add_string buf (Printf.sprintf "step(%.17g %.17g)" v0 v1)
  | Element.Ramp { v0; v1; t_delay; t_rise } ->
    Buffer.add_string buf
      (Printf.sprintf "ramp(%.17g %.17g %.17g %.17g)" v0 v1 t_delay t_rise)
  | Element.Pwl points ->
    Buffer.add_string buf "pwl(";
    List.iteri
      (fun i (t, v) ->
        if i > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf (Printf.sprintf "%.17g %.17g" t v))
      points;
    Buffer.add_char buf ')'

let print_deck ?title (ckt : Netlist.circuit) =
  let buf = Buffer.create 512 in
  (match title with
  | Some t -> Buffer.add_string buf ("* " ^ t ^ "\n")
  | None -> ());
  let nm node = ckt.Netlist.node_names.(node) in
  Array.iter
    (fun e ->
      (match e with
      | Element.Resistor { name; np; nn; r } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %.17g" name (nm np) (nm nn) r)
      | Element.Capacitor { name; np; nn; c; ic } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %.17g%s" name (nm np) (nm nn) c
             (match ic with
             | Some v -> Printf.sprintf " ic=%.17g" v
             | None -> ""))
      | Element.Inductor { name; np; nn; l; ic } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %.17g%s" name (nm np) (nm nn) l
             (match ic with
             | Some v -> Printf.sprintf " ic=%.17g" v
             | None -> ""))
      | Element.Vsource { name; np; nn; wave } ->
        Buffer.add_string buf (Printf.sprintf "%s %s %s " name (nm np) (nm nn));
        print_wave buf wave
      | Element.Isource { name; np; nn; wave } ->
        Buffer.add_string buf (Printf.sprintf "%s %s %s " name (nm np) (nm nn));
        print_wave buf wave
      | Element.Vcvs { name; np; nn; cp; cn; gain } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %s %.17g" name (nm np) (nm nn) (nm cp)
             (nm cn) gain)
      | Element.Vccs { name; np; nn; cp; cn; gm } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %s %.17g" name (nm np) (nm nn) (nm cp)
             (nm cn) gm)
      | Element.Ccvs { name; np; nn; vctrl; r } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %.17g" name (nm np) (nm nn) vctrl r)
      | Element.Cccs { name; np; nn; vctrl; gain } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %.17g" name (nm np) (nm nn) vctrl gain)
      | Element.Mutual { name; l1; l2; k } ->
        Buffer.add_string buf (Printf.sprintf "%s %s %s %.17g" name l1 l2 k));
      Buffer.add_char buf '\n')
    ckt.Netlist.elements;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
