lib/sparse/csr.ml: Array Coo Float Linalg List Stdlib
