lib/sparse/coo.ml: Array Linalg List
