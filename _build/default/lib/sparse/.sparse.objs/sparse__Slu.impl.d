lib/sparse/slu.ml: Array Csr Float Hashtbl Int List Set
