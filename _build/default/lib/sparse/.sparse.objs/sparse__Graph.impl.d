lib/sparse/graph.ml: Array List Queue Stdlib
