lib/sparse/graph.mli:
