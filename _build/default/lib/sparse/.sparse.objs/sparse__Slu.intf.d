lib/sparse/slu.mli: Csr Linalg
