(** Coordinate-format (triplet) sparse matrix builder.

    Circuit stamping naturally produces duplicate entries (several
    elements stamping the same node pair); duplicates are summed on
    conversion, matching SPICE-style matrix assembly. *)

type t

val create : rows:int -> cols:int -> t

val rows : t -> int

val cols : t -> int

val add : t -> int -> int -> float -> unit
(** [add m i j v] accumulates [v] into entry [(i, j)].  Zero values are
    recorded too (they can make a structural position explicit).
    Raises [Invalid_argument] when the indices are out of bounds. *)

val nnz : t -> int
(** Number of recorded triplets (before duplicate summing). *)

val to_dense : t -> Linalg.Matrix.t

val entries : t -> (int * int * float) list
(** All triplets in insertion order. *)
