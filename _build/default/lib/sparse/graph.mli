(** Undirected multigraphs over integer vertices.

    Supports the structural questions circuit topology analysis asks:
    spanning trees (for tree/link partitioning, paper Section IV),
    connected components (floating-node detection), and cycle checks
    (resistor-loop detection in RC-tree recognition). *)

type t

val create : int -> t
(** [create n] is the edgeless graph on vertices [0 .. n-1]. *)

val vertex_count : t -> int

val add_edge : t -> int -> int -> label:int -> unit
(** Adds an undirected edge carrying an integer [label] (the circuit
    element index).  Parallel edges and self-loops are allowed;
    self-loops are never tree edges. *)

val degree : t -> int -> int

type tree_edge = { parent : int; child : int; label : int }

val spanning_forest : ?roots:int list -> t -> tree_edge option array
(** [spanning_forest g] BFS-grows a spanning forest and returns, for
    each vertex, the tree edge connecting it to its parent ([None] for
    roots and isolated vertices).  Vertices in [roots] (default [[0]])
    are seeded first, in order; remaining components get their
    smallest-index vertex as root. *)

val components : t -> int array
(** [components g] labels each vertex with a component id in
    [0 .. c-1]; vertices in the same component share an id. *)

val component_count : t -> int

val is_connected : t -> bool

val has_cycle : t -> bool
(** True when some component contains a cycle (including parallel edges
    and self-loops). *)

val path_to_root : tree_edge option array -> int -> int list
(** [path_to_root forest v] lists the edge labels from [v] up to its
    component root, nearest first. *)
