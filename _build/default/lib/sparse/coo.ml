type t = {
  nrows : int;
  ncols : int;
  mutable is : int array;
  mutable js : int array;
  mutable vs : float array;
  mutable len : int;
}

let create ~rows ~cols =
  { nrows = rows;
    ncols = cols;
    is = Array.make 16 0;
    js = Array.make 16 0;
    vs = Array.make 16 0.;
    len = 0 }

let rows m = m.nrows

let cols m = m.ncols

let grow m =
  let cap = Array.length m.is in
  if m.len = cap then begin
    let ncap = 2 * cap in
    let copy a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    m.is <- copy m.is 0;
    m.js <- copy m.js 0;
    m.vs <- copy m.vs 0.
  end

let add m i j v =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Coo.add: index out of bounds";
  grow m;
  m.is.(m.len) <- i;
  m.js.(m.len) <- j;
  m.vs.(m.len) <- v;
  m.len <- m.len + 1

let nnz m = m.len

let to_dense m =
  let d = Linalg.Matrix.create m.nrows m.ncols in
  for k = 0 to m.len - 1 do
    Linalg.Matrix.add_to d m.is.(k) m.js.(k) m.vs.(k)
  done;
  d

let entries m =
  List.init m.len (fun k -> (m.is.(k), m.js.(k), m.vs.(k)))
