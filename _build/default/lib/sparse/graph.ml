type t = {
  n : int;
  adj : (int * int) list array; (* vertex -> (neighbor, label) *)
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n []; edges = 0 }

let vertex_count g = g.n

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let add_edge g a b ~label =
  check_vertex g a;
  check_vertex g b;
  g.adj.(a) <- (b, label) :: g.adj.(a);
  if a <> b then g.adj.(b) <- (a, label) :: g.adj.(b);
  g.edges <- g.edges + 1

let degree g v =
  check_vertex g v;
  List.length g.adj.(v)

type tree_edge = { parent : int; child : int; label : int }

let spanning_forest ?(roots = [ 0 ]) g =
  let forest = Array.make g.n None in
  let visited = Array.make g.n false in
  let queue = Queue.create () in
  let bfs_from root =
    if root < g.n && not visited.(root) then begin
      visited.(root) <- true;
      Queue.add root queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun (w, label) ->
            if not visited.(w) then begin
              visited.(w) <- true;
              forest.(w) <- Some { parent = v; child = w; label };
              Queue.add w queue
            end)
          (List.rev g.adj.(v))
      done
    end
  in
  List.iter bfs_from roots;
  for v = 0 to g.n - 1 do
    bfs_from v
  done;
  forest

let components g =
  let comp = Array.make g.n (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if comp.(v) < 0 then begin
      let id = !next in
      incr next;
      comp.(v) <- id;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun (w, _) ->
            if comp.(w) < 0 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
          g.adj.(u)
      done
    end
  done;
  comp

let component_count g =
  let comp = components g in
  Array.fold_left (fun m c -> Stdlib.max m (c + 1)) 0 comp

let is_connected g = g.n <= 1 || component_count g = 1

let has_cycle g =
  (* a forest has exactly n - c edges; anything more closes a cycle *)
  g.edges > g.n - component_count g

let path_to_root forest v =
  let rec go v acc =
    match forest.(v) with
    | None -> List.rev acc
    | Some e -> go e.parent (e.label :: acc)
  in
  go v []
