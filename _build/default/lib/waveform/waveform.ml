type t = { times : float array; values : float array }

let create times values =
  let n = Array.length times in
  if n = 0 then invalid_arg "Waveform.create: empty";
  if Array.length values <> n then
    invalid_arg "Waveform.create: length mismatch";
  for i = 1 to n - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Waveform.create: times must be strictly increasing"
  done;
  { times; values }

let of_fun ~t_stop ~samples f =
  if samples < 2 then invalid_arg "Waveform.of_fun: need at least 2 samples";
  if t_stop <= 0. then invalid_arg "Waveform.of_fun: t_stop must be positive";
  let times =
    Array.init samples (fun i ->
        t_stop *. float_of_int i /. float_of_int (samples - 1))
  in
  { times; values = Array.map f times }

let length w = Array.length w.times

let value_at w t =
  let n = Array.length w.times in
  if t <= w.times.(0) then w.values.(0)
  else if t >= w.times.(n - 1) then w.values.(n - 1)
  else begin
    (* binary search for the bracketing segment *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if w.times.(mid) <= t then lo := mid else hi := mid
    done;
    let t1 = w.times.(!lo) and t2 = w.times.(!hi) in
    let y1 = w.values.(!lo) and y2 = w.values.(!hi) in
    y1 +. ((y2 -. y1) *. (t -. t1) /. (t2 -. t1))
  end

let final_value w = w.values.(Array.length w.values - 1)

let resample w times = create times (Array.map (value_at w) times)

let integrate_trapezoid times f =
  let acc = ref 0. in
  for i = 1 to Array.length times - 1 do
    let h = times.(i) -. times.(i - 1) in
    acc := !acc +. (0.5 *. h *. (f (i - 1) +. f i))
  done;
  !acc

let l2_norm w =
  sqrt (integrate_trapezoid w.times (fun i -> w.values.(i) ** 2.))

let l2_error exact approx =
  let a = Array.map (value_at approx) exact.times in
  sqrt
    (integrate_trapezoid exact.times (fun i ->
         (exact.values.(i) -. a.(i)) ** 2.))

let relative_l2_error exact approx =
  let norm = l2_norm exact in
  if norm = 0. then l2_error exact approx else l2_error exact approx /. norm

let max_abs_error exact approx =
  let m = ref 0. in
  Array.iteri
    (fun i t ->
      m := Float.max !m (Float.abs (exact.values.(i) -. value_at approx t)))
    exact.times;
  !m

let crossing_time ?(rising = true) w threshold =
  let n = Array.length w.times in
  let crossed v_prev v =
    if rising then v_prev < threshold && v >= threshold
    else v_prev > threshold && v <= threshold
  in
  let result = ref None in
  (try
     for i = 1 to n - 1 do
       let v_prev = w.values.(i - 1) and v = w.values.(i) in
       if crossed v_prev v then begin
         let t1 = w.times.(i - 1) and t2 = w.times.(i) in
         let frac = if v = v_prev then 0. else (threshold -. v_prev) /. (v -. v_prev) in
         result := Some (t1 +. (frac *. (t2 -. t1)));
         raise Exit
       end
     done
   with Exit -> ());
  !result

let delay_50pct w =
  let v0 = w.values.(0) and vf = final_value w in
  if v0 = vf then None
  else begin
    let mid = 0.5 *. (v0 +. vf) in
    crossing_time ~rising:(vf > v0) w mid
  end

let overshoot w =
  let vf = final_value w in
  let vmax = Array.fold_left Float.max neg_infinity w.values in
  Float.max 0. (vmax -. vf)

let is_monotone ?(tol = 1e-9) w =
  let vmin = Array.fold_left Float.min infinity w.values in
  let vmax = Array.fold_left Float.max neg_infinity w.values in
  let range = Float.max (vmax -. vmin) 1e-300 in
  let up = ref true and down = ref true in
  for i = 1 to Array.length w.values - 1 do
    let d = w.values.(i) -. w.values.(i - 1) in
    if d < -.tol *. range then up := false;
    if d > tol *. range then down := false
  done;
  !up || !down

let rise_time_10_90 w =
  let v0 = w.values.(0) and vf = final_value w in
  if v0 = vf then None
  else begin
    let at frac = v0 +. (frac *. (vf -. v0)) in
    let rising = vf > v0 in
    match (crossing_time ~rising w (at 0.1), crossing_time ~rising w (at 0.9))
    with
    | Some t10, Some t90 when t90 >= t10 -> Some (t90 -. t10)
    | _ -> None
  end

let settling_time ?(band = 0.05) w =
  let vf = final_value w in
  let v0 = w.values.(0) in
  let range = Float.abs (vf -. v0) in
  let range =
    if range > 0. then range
    else begin
      (* pulse-like waveform: settle relative to its peak excursion *)
      Array.fold_left (fun m v -> Float.max m (Float.abs (v -. vf))) 0. w.values
    end
  in
  if range = 0. then None
  else begin
    let tol = band *. range in
    (* scan from the end for the last time the band is violated *)
    let n = Array.length w.times in
    let last_violation = ref (-1) in
    for i = 0 to n - 1 do
      if Float.abs (w.values.(i) -. vf) > tol then last_violation := i
    done;
    if !last_violation < 0 then Some w.times.(0)
    else if !last_violation >= n - 1 then None
    else Some w.times.(!last_violation + 1)
  end

let glitch_area w =
  let vf = final_value w in
  let acc = ref 0. in
  for i = 1 to Array.length w.times - 1 do
    let h = w.times.(i) -. w.times.(i - 1) in
    acc :=
      !acc
      +. (0.5 *. h
         *. (Float.abs (w.values.(i) -. vf)
            +. Float.abs (w.values.(i - 1) -. vf)))
  done;
  !acc

let to_csv w =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "time,value\n";
  Array.iteri
    (fun i t -> Buffer.add_string buf (Printf.sprintf "%g,%g\n" t w.values.(i)))
    w.times;
  Buffer.contents buf

let pair_to_csv ~labels:(l1, l2) w1 w2 =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "time,%s,%s\n" l1 l2);
  Array.iteri
    (fun i t ->
      Buffer.add_string buf
        (Printf.sprintf "%g,%g,%g\n" t w1.values.(i) (value_at w2 t)))
    w1.times;
  Buffer.contents buf

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let ascii_plot ?(width = 72) ?(height = 20) ?(label = "") waves =
  match waves with
  | [] -> ""
  | first :: _ ->
    let t0 = first.times.(0) in
    let t1 = first.times.(Array.length first.times - 1) in
    let vmin, vmax =
      List.fold_left
        (fun (lo, hi) w ->
          Array.fold_left
            (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
            (lo, hi) w.values)
        (infinity, neg_infinity) waves
    in
    let vrange = if vmax -. vmin < 1e-300 then 1. else vmax -. vmin in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun wi w ->
        let glyph = glyphs.(wi mod Array.length glyphs) in
        for col = 0 to width - 1 do
          let t =
            t0 +. ((t1 -. t0) *. float_of_int col /. float_of_int (width - 1))
          in
          let v = value_at w t in
          let row =
            height - 1
            - int_of_float
                (Float.round
                   ((v -. vmin) /. vrange *. float_of_int (height - 1)))
          in
          let row = Stdlib.max 0 (Stdlib.min (height - 1) row) in
          grid.(row).(col) <- glyph
        done)
      waves;
    let buf = Buffer.create (width * height) in
    if label <> "" then Buffer.add_string buf (label ^ "\n");
    Buffer.add_string buf (Printf.sprintf "%+.4g\n" vmax);
    Array.iter
      (fun row ->
        Buffer.add_char buf '|';
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%+.4g" vmin);
    Buffer.add_string buf
      (Printf.sprintf "  t: %.4g .. %.4g\n" t0 t1);
    Buffer.contents buf
