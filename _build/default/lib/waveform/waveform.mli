(** Sampled waveforms and the measurements the paper reports.

    Every figure of the evaluation is a comparison between an AWE
    approximation and an exact (simulated) waveform; every table-level
    claim is a derived measure — relative L2 error (paper, eqs. 35-37),
    threshold-crossing delay (Fig. 2, Section 5.3), overshoot
    (Fig. 26).  This module implements those measures on uniformly or
    nonuniformly sampled data. *)

type t = {
  times : float array;  (** strictly increasing *)
  values : float array;  (** same length *)
}

val create : float array -> float array -> t
(** Validates lengths and monotonicity. *)

val of_fun : t_stop:float -> samples:int -> (float -> float) -> t
(** Uniform sampling of a function on [[0, t_stop]] with [samples >= 2]
    points inclusive of both endpoints. *)

val length : t -> int

val value_at : t -> float -> float
(** Linear interpolation; clamps outside the time range. *)

val final_value : t -> float

val resample : t -> float array -> t
(** Interpolate onto a new time grid. *)

val l2_norm : t -> float
(** [sqrt (integral of v^2)] by the trapezoidal rule over the sampled
    range. *)

val l2_error : t -> t -> float
(** [l2_error exact approx]: absolute L2 difference over the time range
    of [exact], with [approx] interpolated onto it (paper, eq. 35). *)

val relative_l2_error : t -> t -> float
(** [l2_error] normalized by the L2 norm of the exact waveform (paper,
    eqs. 35-37); this is the "error term" percentage the paper quotes
    per figure. *)

val max_abs_error : t -> t -> float

val crossing_time : ?rising:bool -> t -> float -> float option
(** [crossing_time w threshold] is the first time the waveform crosses
    [threshold] going up ([rising = true], default) or down, located by
    linear interpolation between samples. *)

val delay_50pct : t -> float option
(** Time to reach halfway between the initial and final sampled values
    — the paper's 50% delay definition (Fig. 2). *)

val overshoot : t -> float
(** [max(0, max value - final value)] — nonzero only for nonmonotone
    responses such as the underdamped RLC of Fig. 26. *)

val is_monotone : ?tol:float -> t -> bool
(** Within tolerance [tol] (default [1e-9]) times the value range. *)

val rise_time_10_90 : t -> float option
(** 10%-90% rise time of the transition from initial to final value. *)

val settling_time : ?band:float -> t -> float option
(** Earliest time after which the waveform stays within [band]
    (default 0.05, i.e. 5%) of its final value, relative to the total
    transition; [None] when it never settles within the sampled
    range (or the waveform is constant). *)

val glitch_area : t -> float
(** Integral of |v - v_final| over the sampled range — the
    charge-transfer measure used for crosstalk pulses (a waveform that
    starts and ends at the same level still has nonzero area). *)

val to_csv : t -> string
(** Two-column [time,value] CSV with a header line. *)

val pair_to_csv : labels:string * string -> t -> t -> string
(** Three-column CSV of two waveforms on the first waveform's grid. *)

val ascii_plot : ?width:int -> ?height:int -> ?label:string -> t list -> string
(** Rough terminal plot of one or more waveforms sharing a time axis;
    series are drawn with distinct glyphs in listing order. *)
