type t = float array array

let create r c = Array.make_matrix r c 0.

let init r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_rows rows =
  match rows with
  | [] -> [||]
  | first :: rest ->
    let c = List.length first in
    List.iter
      (fun row ->
        if List.length row <> c then
          invalid_arg "Matrix.of_rows: ragged row lengths")
      rest;
    Array.of_list (List.map Array.of_list rows)

let rows (m : t) = Array.length m

let cols (m : t) = if Array.length m = 0 then 0 else Array.length m.(0)

let dims m = (rows m, cols m)

let copy m = Array.map Array.copy m

let get (m : t) i j = m.(i).(j)

let set (m : t) i j v = m.(i).(j) <- v

let add_to (m : t) i j v = m.(i).(j) <- m.(i).(j) +. v

let transpose m =
  let r = rows m and c = cols m in
  init c r (fun i j -> m.(j).(i))

let check_same_dims name a b =
  if dims a <> dims b then
    invalid_arg (Printf.sprintf "Matrix.%s: shape mismatch" name)

let add a b =
  check_same_dims "add" a b;
  init (rows a) (cols a) (fun i j -> a.(i).(j) +. b.(i).(j))

let sub a b =
  check_same_dims "sub" a b;
  init (rows a) (cols a) (fun i j -> a.(i).(j) -. b.(i).(j))

let scale s m = Array.map (Array.map (fun v -> s *. v)) m

let mul a b =
  if cols a <> rows b then invalid_arg "Matrix.mul: inner dimension mismatch";
  let n = cols a in
  init (rows a) (cols b) (fun i j ->
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (a.(i).(k) *. b.(k).(j))
      done;
      !acc)

let mul_vec m x =
  if cols m <> Vec.dim x then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.map (fun row -> Vec.dot row x) m

let mul_vec_transpose m x =
  if rows m <> Vec.dim x then
    invalid_arg "Matrix.mul_vec_transpose: dimension mismatch";
  let y = Vec.create (cols m) in
  for i = 0 to rows m - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to cols m - 1 do
        y.(j) <- y.(j) +. (m.(i).(j) *. xi)
      done
  done;
  y

let row m i = Array.copy m.(i)

let col m j = Array.init (rows m) (fun i -> m.(i).(j))

let swap_rows (m : t) i j =
  if i <> j then begin
    let tmp = m.(i) in
    m.(i) <- m.(j);
    m.(j) <- tmp
  end

let norm_inf m =
  Array.fold_left
    (fun acc row ->
      Float.max acc
        (Array.fold_left (fun s v -> s +. Float.abs v) 0. row))
    0. m

let norm_frobenius m =
  sqrt
    (Array.fold_left
       (fun acc row ->
         Array.fold_left (fun s v -> s +. (v *. v)) acc row)
       0. m)

let max_abs m =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun s v -> Float.max s (Float.abs v)) acc row)
    0. m

let approx_equal ?(tol = 1e-9) a b =
  dims a = dims b && max_abs (sub a b) <= tol

let is_symmetric ?(tol = 1e-12) m =
  let n = rows m in
  n = cols m
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (m.(i).(j) -. m.(j).(i)) > tol then ok := false
    done
  done;
  !ok

let submatrix m row_idx col_idx =
  Array.map (fun i -> Array.map (fun j -> m.(i).(j)) col_idx) row_idx

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun r -> Format.fprintf ppf "%a@," Vec.pp r) m;
  Format.fprintf ppf "@]"
