lib/linalg/cmatrix.ml: Array Cx Float Format List
