lib/linalg/poly.mli: Cx Format
