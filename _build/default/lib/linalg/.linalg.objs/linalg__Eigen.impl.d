lib/linalg/eigen.ml: Array Cx Float List Matrix Stdlib
