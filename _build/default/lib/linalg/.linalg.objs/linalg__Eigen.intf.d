lib/linalg/eigen.mli: Cx Matrix
