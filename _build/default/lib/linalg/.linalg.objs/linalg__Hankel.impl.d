lib/linalg/hankel.ml: Array Lu Matrix
