lib/linalg/vandermonde.ml: Array Cmatrix Cx Float List Stdlib
