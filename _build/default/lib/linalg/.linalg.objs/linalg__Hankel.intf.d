lib/linalg/hankel.mli: Matrix Poly
