lib/linalg/cholesky.mli: Matrix Vec
