lib/linalg/poly.ml: Array Cx Float Format List Stdlib
