lib/linalg/vandermonde.mli: Cx
