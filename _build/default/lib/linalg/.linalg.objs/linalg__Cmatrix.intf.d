lib/linalg/cmatrix.mli: Cx Format Matrix Vec
