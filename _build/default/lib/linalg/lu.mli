(** Dense LU factorization with partial pivoting.

    The factorization [P A = L U] is stored packed in a single matrix
    together with the row-permutation vector.  Factor once, then solve
    against many right-hand sides — the access pattern of the AWE moment
    recursion (paper, Section 3.2). *)

type t
(** An LU factorization of a square matrix. *)

exception Singular of int
(** [Singular k] is raised when no acceptable pivot exists at
    elimination step [k]. *)

val factor : ?pivot_tol:float -> Matrix.t -> t
(** [factor a] computes [P a = L U] with partial pivoting.  Raises
    [Singular] if a pivot has absolute value below [pivot_tol]
    (default [1e-300], i.e. only exact breakdown) times the matrix
    scale.  [a] is not modified. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] returns [x] with [A x = b]. *)

val solve_transpose : t -> Vec.t -> Vec.t
(** [solve_transpose lu b] returns [x] with [A^T x = b]. *)

val solve_matrix : t -> Matrix.t -> Matrix.t
(** Columnwise solve: [solve_matrix lu b] returns [x] with [A x = b]. *)

val det : t -> float
(** Determinant of the factored matrix. *)

val inverse : t -> Matrix.t

val dim : t -> int

val solve_system : Matrix.t -> Vec.t -> Vec.t
(** One-shot [factor]+[solve]. *)

val rcond_estimate : Matrix.t -> t -> float
(** Cheap reciprocal condition-number estimate in the infinity norm:
    [1 / (||A||_inf * ||A^-1 e||_inf)] maximized over a few probing
    vectors [e].  Used to decide when the AWE moment matrix needs
    frequency scaling (paper, Section 3.5). *)
