exception Not_positive_definite of int

type t = { l : Matrix.t }

let dim f = Matrix.rows f.l

let factor a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Cholesky.factor: matrix not square";
  let l = Matrix.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Matrix.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Matrix.get l i k *. Matrix.get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then raise (Not_positive_definite i);
        Matrix.set l i i (sqrt !acc)
      end
      else Matrix.set l i j (!acc /. Matrix.get l j j)
    done
  done;
  { l }

let solve f b =
  let n = dim f in
  if Vec.dim b <> n then invalid_arg "Cholesky.solve: dimension mismatch";
  let y = Vec.copy b in
  (* forward: L y = b *)
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Matrix.get f.l i k *. y.(k))
    done;
    y.(i) <- !acc /. Matrix.get f.l i i
  done;
  (* backward: L^T x = y *)
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.l k i *. y.(k))
    done;
    y.(i) <- !acc /. Matrix.get f.l i i
  done;
  y

let det f =
  let n = dim f in
  let d = ref 1. in
  for i = 0 to n - 1 do
    let p = Matrix.get f.l i i in
    d := !d *. p *. p
  done;
  !d

let is_positive_definite a =
  match factor a with
  | _ -> true
  | exception (Not_positive_definite _ | Invalid_argument _) -> false
