(** Dense real matrices in row-major [float array array] layout.

    A value [m : t] of shape [(r, c)] satisfies
    [Array.length m = r] and [Array.length m.(i) = c] for all rows.
    Shape mismatches raise [Invalid_argument]. *)

type t = float array array

val create : int -> int -> t
(** [create r c] is the [r x c] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_rows : float list list -> t
(** Builds from row lists; raises [Invalid_argument] on ragged input. *)

val rows : t -> int

val cols : t -> int

val dims : t -> int * int

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] performs [m.(i).(j) <- m.(i).(j) +. v];
    the fundamental stamping operation used by circuit assembly. *)

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m x] is the matrix-vector product [m x]. *)

val mul_vec_transpose : t -> Vec.t -> Vec.t
(** [mul_vec_transpose m x] is [m^T x], without forming the transpose. *)

val row : t -> int -> Vec.t
(** Copy of a row. *)

val col : t -> int -> Vec.t
(** Copy of a column. *)

val swap_rows : t -> int -> int -> unit

val norm_inf : t -> float
(** Induced infinity norm (maximum absolute row sum). *)

val norm_frobenius : t -> float

val max_abs : t -> float
(** Largest absolute entry; [0.] for an empty matrix. *)

val approx_equal : ?tol:float -> t -> t -> bool

val is_symmetric : ?tol:float -> t -> bool

val submatrix : t -> int array -> int array -> t
(** [submatrix m rows cols] extracts the given rows and columns,
    in the order listed. *)

val pp : Format.formatter -> t -> unit
