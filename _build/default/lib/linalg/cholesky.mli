(** Cholesky factorization for symmetric positive-definite matrices.

    Capacitance and inductance sub-blocks of the energy-storage matrix
    are symmetric and (for physical element values) positive definite
    (paper, Section 3.2: "the energy storage matrix is sparse,
    symmetrical, and easily applied"); Cholesky factors them in half
    the work of LU and doubles as a cheap positive-definiteness
    test. *)

exception Not_positive_definite of int
(** Raised with the failing pivot index when the matrix is not
    (numerically) positive definite. *)

type t

val factor : Matrix.t -> t
(** [factor a] computes the lower factor [L] with [A = L L^T].  Only
    the lower triangle of [a] is read; symmetry of the upper triangle
    is the caller's responsibility.  Raises [Not_positive_definite]. *)

val solve : t -> Vec.t -> Vec.t

val det : t -> float
(** Determinant (product of squared pivots); always positive. *)

val dim : t -> int

val is_positive_definite : Matrix.t -> bool
(** True when [factor] succeeds. *)
