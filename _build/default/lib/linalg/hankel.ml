exception Deficient of int

let check ~q mu =
  if q <= 0 then invalid_arg "Hankel: order must be positive";
  if Array.length mu < 2 * q then
    invalid_arg "Hankel: need at least 2q moment values"

let moment_matrix ~q mu =
  check ~q mu;
  Matrix.init q q (fun r i -> mu.(r + i))

let char_poly ~q mu =
  check ~q mu;
  let h = moment_matrix ~q mu in
  let rhs = Array.init q (fun r -> -.mu.(q + r)) in
  let a =
    try Lu.solve (Lu.factor ~pivot_tol:1e-13 h) rhs
    with Lu.Singular k -> raise (Deficient k)
  in
  Array.init (q + 1) (fun i -> if i = q then 1. else a.(i))

let rcond ~q mu =
  let h = moment_matrix ~q mu in
  match Lu.factor h with
  | f -> Lu.rcond_estimate h f
  | exception Lu.Singular _ -> 0.
