(** Vandermonde-type systems for AWE residue recovery.

    After the approximating poles are known, the residues follow from a
    transposed ("dual") Vandermonde system in the reciprocal poles
    (paper, eqs. 16-20).  When root finding returns a repeated pole the
    plain Vandermonde matrix is singular (paper, Section III) and the
    confluent variant matching a [sum_i K_i t^(i-1) e^(pt) / (i-1)!]
    model must be used (paper, eqs. 26-29). *)

val solve_power_sums : Cx.t array -> Cx.t array -> Cx.t array
(** [solve_power_sums z mu] returns [k] such that for every
    [j = 0 .. q-1]: [sum_l k.(l) * z.(l)^j = mu.(j)], where
    [q = Array.length z].  Raises [Cmatrix.Singular] when two nodes
    coincide exactly — cluster them and use [solve_confluent] instead. *)

type cluster = { node : Cx.t; multiplicity : int }
(** A group of coincident reciprocal poles. *)

val cluster_nodes : ?tol:float -> Cx.t array -> cluster array
(** Greedy clustering of near-coincident nodes: nodes within
    [tol * scale] of a cluster representative (default [tol = 1e-7],
    [scale] the largest node magnitude) are merged, and the
    representative is the cluster mean. *)

val solve_confluent :
  cluster array -> slope:Cx.t option -> Cx.t array -> Cx.t array array
(** [solve_confluent clusters ~slope mu] returns residue groups
    [k] with [k.(c).(i)] the coefficient [K_(c,i+1)] of the time-domain
    term [t^i e^(p_c t) / i!] for cluster [c].

    The matching conditions are, with [z_c] the cluster node and
    [p_c = 1/z_c]:
    - row [j = 0]: [sum_c K_(c,1) = mu.(0)] (initial value);
    - rows [j >= 1]:
      [sum_c sum_i K_(c,i) (-1)^(i+1) binom(i+j-2, j-1) z_c^(i+j-1)
       = mu.(j)];
    - when [slope] is [Some d], the last moment row is replaced by the
      initial-slope condition
      [sum_c (K_(c,1) p_c + K_(c,2)) = d] (paper, Section 4.3:
      matching the m_(-2) term removes the t = 0 glitch of ramp
      responses).

    The total number of unknowns [sum_c mult_c] must equal
    [Array.length mu]. *)
