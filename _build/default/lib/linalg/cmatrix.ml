open Cx

type vec = Cx.t array

type t = Cx.t array array

exception Singular of int

let create r c = Array.make_matrix r c Cx.zero

let init r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))

let identity n = init n n (fun i j -> if i = j then Cx.one else Cx.zero)

let of_real m = Array.map (Array.map Cx.re) m

let rows (m : t) = Array.length m

let cols (m : t) = if Array.length m = 0 then 0 else Array.length m.(0)

let mul_vec m x =
  if cols m <> Array.length x then
    invalid_arg "Cmatrix.mul_vec: dimension mismatch";
  Array.map
    (fun row ->
      let acc = ref Cx.zero in
      Array.iteri (fun j a -> acc := !acc +: (a *: x.(j))) row;
      !acc)
    m

let vec_of_real = Array.map Cx.re

let vec_norm_inf v = Array.fold_left (fun m z -> Float.max m (Cx.abs z)) 0. v

let vec_approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Cx.abs (x -: y) <= tol) a b

type factored = { lu : t; perm : int array }

let factor a =
  let n = rows a in
  if cols a <> n then invalid_arg "Cmatrix.factor: matrix not square";
  let lu = Array.map Array.copy a in
  let perm = Array.init n (fun idx -> idx) in
  for k = 0 to n - 1 do
    let piv = ref k in
    let best = ref (Cx.abs lu.(k).(k)) in
    for r = k + 1 to n - 1 do
      let v = Cx.abs lu.(r).(k) in
      if v > !best then begin
        best := v;
        piv := r
      end
    done;
    if !best = 0. then raise (Singular k);
    if !piv <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!piv);
      lu.(!piv) <- tmp;
      let t = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- t
    end;
    let pivot = lu.(k).(k) in
    for r = k + 1 to n - 1 do
      let m = lu.(r).(k) /: pivot in
      lu.(r).(k) <- m;
      if m <> Cx.zero then
        for j = k + 1 to n - 1 do
          lu.(r).(j) <- lu.(r).(j) -: (m *: lu.(k).(j))
        done
    done
  done;
  { lu; perm }

let solve_factored f b =
  let n = Array.length f.perm in
  if Array.length b <> n then invalid_arg "Cmatrix.solve: dimension mismatch";
  let x = Array.init n (fun r -> b.(f.perm.(r))) in
  for r = 1 to n - 1 do
    let acc = ref x.(r) in
    for j = 0 to r - 1 do
      acc := !acc -: (f.lu.(r).(j) *: x.(j))
    done;
    x.(r) <- !acc
  done;
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for j = r + 1 to n - 1 do
      acc := !acc -: (f.lu.(r).(j) *: x.(j))
    done;
    x.(r) <- !acc /: f.lu.(r).(r)
  done;
  x

let solve a b = solve_factored (factor a) b

let solve_many a bs =
  let f = factor a in
  List.map (solve_factored f) bs

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun r ->
      Format.fprintf ppf "[%a]@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Cx.pp)
        (Array.to_list r))
    m;
  Format.fprintf ppf "@]"
