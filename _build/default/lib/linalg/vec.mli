(** Dense real vectors backed by [float array].

    All operations allocate fresh vectors unless suffixed [_ip]
    (in place).  Dimension mismatches raise [Invalid_argument]. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is the vector whose [i]th component is [f i]. *)

val dim : t -> int
(** Number of components. *)

val copy : t -> t

val of_list : float list -> t

val to_list : t -> float list

val get : t -> int -> float

val set : t -> int -> float -> unit

val add : t -> t -> t
(** Componentwise sum. *)

val sub : t -> t -> t
(** Componentwise difference. *)

val scale : float -> t -> t
(** [scale a x] is [a * x]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val neg : t -> t

val dot : t -> t -> float
(** Euclidean inner product. *)

val norm2 : t -> float
(** Euclidean norm, computed without overflow for moderate inputs. *)

val norm_inf : t -> float
(** Maximum absolute component; [0.] for the empty vector. *)

val dist_inf : t -> t -> float
(** [dist_inf x y] is [norm_inf (sub x y)]. *)

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [tol]
    (default [1e-9]). *)

val basis : int -> int -> t
(** [basis n i] is the [i]th standard basis vector of dimension [n]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [[| x0; x1; ... |]] with short float formatting. *)
