(** Eigenvalues of real, unsymmetric matrices.

    Used to obtain the *actual* circuit poles against which the paper
    compares the AWE approximating poles (Tables I and II): the finite
    poles of the MNA descriptor system [G x + C x' = B u] are the
    reciprocals of the nonzero eigenvalues of [-G^-1 C], a small dense
    real matrix.

    The implementation is the classical two-phase dense method:
    reduction to upper Hessenberg form by stabilized elementary
    similarity transformations, followed by the Francis implicit
    double-shift QR iteration (eigenvalues only). *)

exception No_convergence
(** Raised when the QR iteration fails to deflate an eigenvalue within
    the iteration budget (does not happen for the well-scaled circuit
    matrices this library produces; present for safety). *)

val hessenberg : Matrix.t -> Matrix.t
(** [hessenberg a] returns an upper Hessenberg matrix similar to [a]
    (same eigenvalues).  [a] is not modified. *)

val eigenvalues : Matrix.t -> Cx.t list
(** All [n] eigenvalues of a square matrix, sorted by ascending
    magnitude.  Raises [Invalid_argument] on non-square input. *)

val circuit_poles : ?drop_tol:float -> Matrix.t -> Cx.t list
(** [circuit_poles m] interprets [m] as the moment-generation operator
    [A^-1 = -G^-1 C] and returns the finite natural frequencies
    [p = 1 / mu] for each eigenvalue [mu] of [m] with
    [|mu| > drop_tol * max_k |mu_k|] (default [drop_tol = 1e-9]; the
    dropped near-zero eigenvalues correspond to the algebraic MNA
    variables).  Sorted by ascending magnitude, i.e. most dominant pole
    first. *)
