exception No_convergence

let eps = 1e-14

(* Reduction to upper Hessenberg form by stabilized elementary
   transformations (Gaussian similarity with pivoting).  Entries below
   the first subdiagonal are explicitly zeroed afterwards so the QR
   phase sees a clean Hessenberg matrix. *)
let hessenberg a0 =
  let n = Matrix.rows a0 in
  if Matrix.cols a0 <> n then invalid_arg "Eigen.hessenberg: not square";
  let a = Matrix.copy a0 in
  for m = 1 to n - 2 do
    (* pivot: largest magnitude in column m-1, rows m..n-1 *)
    let piv = ref m in
    let x = ref (Float.abs a.(m).(m - 1)) in
    for j = m + 1 to n - 1 do
      if Float.abs a.(j).(m - 1) > !x then begin
        x := Float.abs a.(j).(m - 1);
        piv := j
      end
    done;
    let x = a.(!piv).(m - 1) in
    if !piv <> m then begin
      (* swap rows and columns to preserve similarity *)
      Matrix.swap_rows a !piv m;
      for j = 0 to n - 1 do
        let tmp = a.(j).(!piv) in
        a.(j).(!piv) <- a.(j).(m);
        a.(j).(m) <- tmp
      done
    end;
    if x <> 0. then
      for i = m + 1 to n - 1 do
        let y = a.(i).(m - 1) in
        if y <> 0. then begin
          let y = y /. x in
          for j = m - 1 to n - 1 do
            a.(i).(j) <- a.(i).(j) -. (y *. a.(m).(j))
          done;
          for j = 0 to n - 1 do
            a.(j).(m) <- a.(j).(m) +. (y *. a.(j).(i))
          done
        end
      done
  done;
  for i = 2 to n - 1 do
    for j = 0 to i - 2 do
      a.(i).(j) <- 0.
    done
  done;
  a

let sign_of magnitude reference =
  if reference >= 0. then Float.abs magnitude else -.Float.abs magnitude

(* Francis double-shift QR on an upper Hessenberg matrix; eigenvalues
   only.  Classical algorithm (Wilkinson / EISPACK hqr). *)
let hqr a =
  let n = Matrix.rows a in
  let wr = Array.make n 0. and wi = Array.make n 0. in
  if n = 0 then (wr, wi)
  else begin
    let anorm = ref 0. in
    for i = 0 to n - 1 do
      for j = Stdlib.max (i - 1) 0 to n - 1 do
        anorm := !anorm +. Float.abs a.(i).(j)
      done
    done;
    let anorm = Float.max !anorm 1e-300 in
    let nn = ref (n - 1) in
    let t = ref 0. in
    while !nn >= 0 do
      let its = ref 0 in
      let deflated = ref false in
      while not !deflated do
        (* find l: smallest index such that the subdiagonal entry at
           (l, l-1) is negligible; l = 0 when none is *)
        let l = ref 0 in
        (try
           for cand = !nn downto 1 do
             let s =
               Float.abs a.(cand - 1).(cand - 1) +. Float.abs a.(cand).(cand)
             in
             let s = if s = 0. then anorm else s in
             if Float.abs a.(cand).(cand - 1) <= eps *. s then begin
               a.(cand).(cand - 1) <- 0.;
               l := cand;
               raise Exit
             end
           done
         with Exit -> ());
        let l = !l in
        let x = a.(!nn).(!nn) in
        if l = !nn then begin
          (* one real eigenvalue deflated *)
          wr.(!nn) <- x +. !t;
          wi.(!nn) <- 0.;
          decr nn;
          deflated := true
        end
        else begin
          let y = a.(!nn - 1).(!nn - 1) in
          let w = a.(!nn).(!nn - 1) *. a.(!nn - 1).(!nn) in
          if l = !nn - 1 then begin
            (* a 2x2 block deflates: two eigenvalues *)
            let p = 0.5 *. (y -. x) in
            let q = (p *. p) +. w in
            let z = Stdlib.sqrt (Float.abs q) in
            let x = x +. !t in
            if q >= 0. then begin
              let z = p +. sign_of z p in
              wr.(!nn - 1) <- x +. z;
              wr.(!nn) <- (if z <> 0. then x -. (w /. z) else x +. z);
              wi.(!nn - 1) <- 0.;
              wi.(!nn) <- 0.
            end
            else begin
              wr.(!nn - 1) <- x +. p;
              wr.(!nn) <- x +. p;
              wi.(!nn) <- z;
              wi.(!nn - 1) <- -.z
            end;
            nn := !nn - 2;
            deflated := true
          end
          else begin
            if !its = 60 then raise No_convergence;
            let x = ref x and y = ref y and w = ref w in
            if !its = 10 || !its = 20 || !its = 30 || !its = 40 || !its = 50
            then begin
              (* exceptional shift to break symmetry-induced cycling *)
              t := !t +. !x;
              for i = 0 to !nn do
                a.(i).(i) <- a.(i).(i) -. !x
              done;
              let s =
                Float.abs a.(!nn).(!nn - 1) +. Float.abs a.(!nn - 1).(!nn - 2)
              in
              x := 0.75 *. s;
              y := !x;
              w := -0.4375 *. s *. s
            end;
            incr its;
            (* look for two consecutive small subdiagonal elements *)
            let m = ref (!nn - 2) in
            let p = ref 0. and q = ref 0. and r = ref 0. in
            (try
               while !m >= l do
                 let mm = !m in
                 let z = a.(mm).(mm) in
                 let rr = !x -. z in
                 let ss = !y -. z in
                 p := (((rr *. ss) -. !w) /. a.(mm + 1).(mm)) +. a.(mm).(mm + 1);
                 q := a.(mm + 1).(mm + 1) -. z -. rr -. ss;
                 r := a.(mm + 2).(mm + 1);
                 let s = Float.abs !p +. Float.abs !q +. Float.abs !r in
                 p := !p /. s;
                 q := !q /. s;
                 r := !r /. s;
                 if mm = l then raise Exit;
                 let u =
                   Float.abs a.(mm).(mm - 1) *. (Float.abs !q +. Float.abs !r)
                 in
                 let v =
                   Float.abs !p
                   *. (Float.abs a.(mm - 1).(mm - 1)
                      +. Float.abs z
                      +. Float.abs a.(mm + 1).(mm + 1))
                 in
                 if u <= eps *. v then raise Exit;
                 decr m
               done
             with Exit -> ());
            let m = !m in
            for i = m + 2 to !nn do
              a.(i).(i - 2) <- 0.;
              if i <> m + 2 then a.(i).(i - 3) <- 0.
            done;
            (* double QR sweep on rows l..nn *)
            for k = m to !nn - 1 do
              if k <> m then begin
                p := a.(k).(k - 1);
                q := a.(k + 1).(k - 1);
                r := if k <> !nn - 1 then a.(k + 2).(k - 1) else 0.;
                let xx = Float.abs !p +. Float.abs !q +. Float.abs !r in
                x := xx;
                if xx <> 0. then begin
                  p := !p /. xx;
                  q := !q /. xx;
                  r := !r /. xx
                end
              end;
              let s =
                sign_of
                  (Stdlib.sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r)))
                  !p
              in
              if s <> 0. then begin
                if k = m then begin
                  if l <> m then a.(k).(k - 1) <- -.a.(k).(k - 1)
                end
                else a.(k).(k - 1) <- -.s *. !x;
                p := !p +. s;
                x := !p /. s;
                y := !q /. s;
                let z = !r /. s in
                q := !q /. !p;
                r := !r /. !p;
                for j = k to !nn do
                  let pj = a.(k).(j) +. (!q *. a.(k + 1).(j)) in
                  let pj =
                    if k <> !nn - 1 then begin
                      let pj = pj +. (!r *. a.(k + 2).(j)) in
                      a.(k + 2).(j) <- a.(k + 2).(j) -. (pj *. z);
                      pj
                    end
                    else pj
                  in
                  a.(k + 1).(j) <- a.(k + 1).(j) -. (pj *. !y);
                  a.(k).(j) <- a.(k).(j) -. (pj *. !x)
                done;
                let mmin = Stdlib.min !nn (k + 3) in
                for i = l to mmin do
                  let pi = (!x *. a.(i).(k)) +. (!y *. a.(i).(k + 1)) in
                  let pi =
                    if k <> !nn - 1 then begin
                      let pi = pi +. (z *. a.(i).(k + 2)) in
                      a.(i).(k + 2) <- a.(i).(k + 2) -. (pi *. !r);
                      pi
                    end
                    else pi
                  in
                  a.(i).(k + 1) <- a.(i).(k + 1) -. (pi *. !q);
                  a.(i).(k) <- a.(i).(k) -. pi
                done
              end
            done
          end
        end
      done
    done;
    (wr, wi)
  end

let eigenvalues a0 =
  let n = Matrix.rows a0 in
  if Matrix.cols a0 <> n then invalid_arg "Eigen.eigenvalues: not square";
  if n = 0 then []
  else if n = 1 then [ Cx.re a0.(0).(0) ]
  else begin
    let h = hessenberg a0 in
    let wr, wi = hqr h in
    List.sort Cx.compare_by_magnitude
      (List.init n (fun i -> Cx.make wr.(i) wi.(i)))
  end

let circuit_poles ?(drop_tol = 1e-9) m =
  let mus = eigenvalues m in
  let max_mag =
    List.fold_left (fun acc mu -> Float.max acc (Cx.abs mu)) 0. mus
  in
  if max_mag = 0. then []
  else
    mus
    |> List.filter (fun mu -> Cx.abs mu > drop_tol *. max_mag)
    |> List.map Cx.inv
    |> List.sort Cx.compare_by_magnitude
