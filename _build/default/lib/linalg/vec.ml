type t = float array

let create n = Array.make n 0.

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let get (x : t) i = x.(i)

let set (x : t) i v = x.(i) <- v

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)"
                   name (Array.length x) (Array.length y))

let add x y =
  check_same_dim "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_dim "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let neg x = Array.map (fun v -> -.v) x

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0. x

let dist_inf x y =
  check_same_dim "dist_inf" x y;
  let m = ref 0. in
  for i = 0 to Array.length x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m

let map = Array.map

let mapi = Array.mapi

let fold = Array.fold_left

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y && dist_inf x y <= tol

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let e = create n in
  e.(i) <- 1.;
  e

let pp ppf x =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf v -> Format.fprintf ppf "%.6g" v))
    (Array.to_list x)
