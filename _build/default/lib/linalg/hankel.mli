(** The AWE moment-matching (Hankel) system.

    Matching the initial value and the first [2q-1] moments of the
    homogeneous response to a q-pole model leads to a q x q Hankel
    system in the power sums [mu] of the reciprocal poles (paper,
    eq. 24); its solution gives the coefficients of the characteristic
    polynomial (eq. 25) whose roots are the reciprocal approximating
    poles. *)

exception Deficient of int
(** Raised (with the failing elimination step) when the moment matrix
    is singular — the response is degenerate at this order, e.g. a
    first-order fit of a zero-mean nonmonotone transient
    (paper, Section 3.3).  Callers escalate the order. *)

val moment_matrix : q:int -> float array -> Matrix.t
(** [moment_matrix ~q mu] is the q x q Hankel matrix [H.(r).(i) =
    mu.(r+i)].  [mu] must have at least [2q] entries. *)

val char_poly : q:int -> float array -> Poly.t
(** [char_poly ~q mu] solves [H a = -mu_high] and returns the monic
    characteristic polynomial [z^q + a_(q-1) z^(q-1) + ... + a_0] in the
    reciprocal-pole variable [z = 1/p], as a coefficient array of
    length [q+1].  Raises [Deficient] when the Hankel matrix is
    singular. *)

val rcond : q:int -> float array -> float
(** Reciprocal condition estimate of the moment matrix; the
    frequency-scaling ablation (paper, Section 3.5) reports this with
    and without scaling. *)
