open Cx

type t = float array

let degree p =
  let d = ref (Array.length p - 1) in
  while !d >= 0 && p.(!d) = 0. do
    decr d
  done;
  !d

let eval p x =
  let acc = ref 0. in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_cx p z =
  let acc = ref Cx.zero in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *: z) +: Cx.re p.(i)
  done;
  !acc

let derivative p =
  let d = degree p in
  if d <= 0 then [| 0. |]
  else Array.init d (fun i -> float_of_int (i + 1) *. p.(i + 1))

let mul a b =
  let da = degree a and db = degree b in
  if da < 0 || db < 0 then [| 0. |]
  else begin
    let out = Array.make (da + db + 1) 0. in
    for i = 0 to da do
      for j = 0 to db do
        out.(i + j) <- out.(i + j) +. (a.(i) *. b.(j))
      done
    done;
    out
  end

let add a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      (if i < Array.length a then a.(i) else 0.)
      +. if i < Array.length b then b.(i) else 0.)

let scale s p = Array.map (fun c -> s *. c) p

let of_roots rs =
  (* multiply out (x - r) factors in complex arithmetic, then take the
     real part: conjugate-paired inputs give real coefficients *)
  let coeffs =
    List.fold_left
      (fun acc r ->
        let n = Array.length acc in
        let out = Array.make (n + 1) Cx.zero in
        Array.iteri (fun i c -> out.(i + 1) <- out.(i + 1) +: c) acc;
        Array.iteri (fun i c -> out.(i) <- out.(i) -: (r *: c)) acc;
        out)
      [| Cx.one |] rs
  in
  Array.map (fun c -> c.Cx.re) coeffs

(* -------------------------------------------------------------------- *)
(* Root finding                                                          *)

let roots_linear c0 c1 = [ Cx.re (-.c0 /. c1) ]

let roots_quadratic c0 c1 c2 =
  let disc = (c1 *. c1) -. (4. *. c2 *. c0) in
  if disc >= 0. then begin
    (* numerically stable real-root formulas avoid cancellation *)
    let sq = Stdlib.sqrt disc in
    let q = -0.5 *. (c1 +. (Float.of_int (compare c1 0.) *. sq)) in
    let q = if c1 = 0. then -0.5 *. sq else q in
    if q = 0. then [ Cx.zero; Cx.zero ]
    else [ Cx.re (q /. c2); Cx.re (c0 /. q) ]
  end
  else begin
    let re = -.c1 /. (2. *. c2) in
    let im = Stdlib.sqrt (-.disc) /. (2. *. c2) in
    [ Cx.make re im; Cx.make re (-.im) ]
  end

(* Aberth-Ehrlich simultaneous iteration for a monic polynomial given by
   full coefficient array [p] (leading coefficient nonzero). *)
let aberth ~max_iter ~tol p =
  let d = degree p in
  let p = Array.sub p 0 (d + 1) in
  let dp = derivative p in
  (* initial guesses on a circle of radius given by the Cauchy bound,
     slightly perturbed off symmetric configurations *)
  let lead = Float.abs p.(d) in
  let radius =
    let m = ref 0. in
    for i = 0 to d - 1 do
      m := Float.max !m (Float.abs p.(i) /. lead)
    done;
    1. +. !m
  in
  let z =
    Array.init d (fun k ->
        let theta =
          (2. *. Float.pi *. float_of_int k /. float_of_int d) +. 0.4
        in
        Cx.make (radius *. cos theta) (radius *. sin theta))
  in
  let converged = Array.make d false in
  let iter = ref 0 in
  let all_done = ref false in
  while (not !all_done) && !iter < max_iter do
    incr iter;
    all_done := true;
    for k = 0 to d - 1 do
      if not converged.(k) then begin
        let pk = eval_cx p z.(k) in
        if Cx.abs pk <= tol *. lead then converged.(k) <- true
        else begin
          let dpk = eval_cx dp z.(k) in
          let newton =
            if Cx.abs dpk = 0. then Cx.re (tol *. radius) else pk /: dpk
          in
          let repulsion = ref Cx.zero in
          for j = 0 to d - 1 do
            if j <> k then begin
              let diff = z.(k) -: z.(j) in
              let diff =
                if Cx.abs diff = 0. then Cx.make 1e-12 1e-12 else diff
              in
              repulsion := !repulsion +: Cx.inv diff
            end
          done;
          let denom = Cx.one -: (newton *: !repulsion) in
          let step =
            if Cx.abs denom = 0. then newton else newton /: denom
          in
          z.(k) <- z.(k) -: step;
          if Cx.abs step > tol *. Float.max 1. (Cx.abs z.(k)) then
            all_done := false
        end
      end
    done
  done;
  Array.to_list z

(* Enforce conjugate symmetry of roots of a real polynomial: snap
   near-real roots to the axis, average near-conjugate pairs. *)
let symmetrize roots =
  let arr = Array.of_list roots in
  let n = Array.length arr in
  let scale =
    Array.fold_left (fun m z -> Float.max m (Cx.abs z)) 1e-300 arr
  in
  let tol = 1e-8 *. scale in
  let used = Array.make n false in
  let out = ref [] in
  for k = 0 to n - 1 do
    if not used.(k) then begin
      let z = arr.(k) in
      if Float.abs z.Cx.im <= tol then begin
        used.(k) <- true;
        out := Cx.re z.Cx.re :: !out
      end
      else begin
        (* find the closest unused candidate conjugate *)
        let best = ref (-1) in
        let bestd = ref Float.infinity in
        for j = k + 1 to n - 1 do
          if not used.(j) then begin
            let d = Cx.abs (arr.(j) -: Cx.conj z) in
            if d < !bestd then begin
              bestd := d;
              best := j
            end
          end
        done;
        if !best >= 0 && !bestd <= 1e-6 *. scale then begin
          used.(k) <- true;
          used.(!best) <- true;
          let avg_re = 0.5 *. (z.Cx.re +. arr.(!best).Cx.re) in
          let avg_im = 0.5 *. (Float.abs z.Cx.im +. Float.abs arr.(!best).Cx.im) in
          out := Cx.make avg_re avg_im :: Cx.make avg_re (-.avg_im) :: !out
        end
        else begin
          used.(k) <- true;
          out := z :: !out
        end
      end
    end
  done;
  !out

let roots ?(max_iter = 200) ?(tol = 1e-13) p =
  let d = degree p in
  if d < 0 then invalid_arg "Poly.roots: zero polynomial";
  (* deflate roots at the origin *)
  let low = ref 0 in
  while p.(!low) = 0. do
    incr low
  done;
  let zero_roots = List.init !low (fun _ -> Cx.zero) in
  let q = Array.sub p !low (d - !low + 1) in
  let dq = degree q in
  let rest =
    if dq = 0 then []
    else if dq = 1 then roots_linear q.(0) q.(1)
    else if dq = 2 then roots_quadratic q.(0) q.(1) q.(2)
    else begin
      (* scale to monic-ish to keep the Cauchy bound sane *)
      let monic = Array.map (fun c -> c /. q.(dq)) q in
      symmetrize (aberth ~max_iter ~tol monic)
    end
  in
  List.sort Cx.compare_by_magnitude (zero_roots @ rest)

let pp ppf p =
  let d = degree p in
  if d < 0 then Format.fprintf ppf "0"
  else begin
    let first = ref true in
    for i = 0 to d do
      if p.(i) <> 0. || (d = 0 && i = 0) then begin
        if not !first then Format.fprintf ppf " + ";
        first := false;
        if i = 0 then Format.fprintf ppf "%.6g" p.(i)
        else Format.fprintf ppf "%.6g x^%d" p.(i) i
      end
    done
  end
