(** Complex scalar helpers on top of [Stdlib.Complex].

    AWE poles and residues are complex in general (underdamped RLC
    interconnect, paper Section 5.4); this module collects the small
    amount of complex arithmetic the rest of the library needs with
    infix operators for readability. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t

val re : float -> t
(** Embed a real number. *)

val make : float -> float -> t

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t

val neg : t -> t
val conj : t -> t
val inv : t -> t
val abs : t -> float
val arg : t -> float
val exp : t -> t
val sqrt : t -> t
val pow_int : t -> int -> t
(** [pow_int z k] for any integer [k] (negative exponents allowed for
    nonzero [z]). *)

val scale : float -> t -> t

val is_real : ?tol:float -> t -> bool
(** True when [|im| <= tol * max 1 |re|] (default [tol = 1e-9]). *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Absolute-difference comparison. *)

val compare_by_magnitude : t -> t -> int
(** Ascending magnitude, ties broken by argument; total order suitable
    for sorting pole lists. *)

val pp : Format.formatter -> t -> unit
(** Prints [a+bj] / [a-bj] in scientific notation, matching the pole
    tables of the paper. *)
