open Cx

let solve_power_sums z mu =
  let q = Array.length z in
  if Array.length mu <> q then
    invalid_arg "Vandermonde.solve_power_sums: need exactly q moments";
  let m = Cmatrix.init q q (fun j l -> Cx.pow_int z.(l) j) in
  Cmatrix.solve m mu

type cluster = { node : Cx.t; multiplicity : int }

let cluster_nodes ?(tol = 1e-7) z =
  let n = Array.length z in
  let scale = Array.fold_left (fun m v -> Float.max m (Cx.abs v)) 1e-300 z in
  let used = Array.make n false in
  let out = ref [] in
  for i = 0 to n - 1 do
    if not used.(i) then begin
      used.(i) <- true;
      let members = ref [ z.(i) ] in
      for j = i + 1 to n - 1 do
        if (not used.(j)) && Cx.abs (z.(j) -: z.(i)) <= tol *. scale then begin
          used.(j) <- true;
          members := z.(j) :: !members
        end
      done;
      let count = List.length !members in
      let sum = List.fold_left ( +: ) Cx.zero !members in
      out :=
        { node = Cx.scale (1. /. float_of_int count) sum;
          multiplicity = count }
        :: !out
    end
  done;
  Array.of_list (List.rev !out)

let binom n k =
  if k < 0 || k > n then 0.
  else begin
    let k = Stdlib.min k (n - k) in
    let acc = ref 1. in
    for i = 0 to k - 1 do
      acc := !acc *. float_of_int (n - i) /. float_of_int (i + 1)
    done;
    !acc
  end

let solve_confluent clusters ~slope mu =
  let q = Array.fold_left (fun s c -> s + c.multiplicity) 0 clusters in
  if Array.length mu <> q then
    invalid_arg "Vandermonde.solve_confluent: need exactly q conditions";
  (* column layout: cluster c occupies a contiguous block of
     [multiplicity] columns, one per time-power index ii = 0 .. mult-1 *)
  let col_cluster = Array.make q 0 in
  let col_power = Array.make q 0 in
  let col = ref 0 in
  Array.iteri
    (fun c cl ->
      for ii = 0 to cl.multiplicity - 1 do
        col_cluster.(!col) <- c;
        col_power.(!col) <- ii;
        incr col
      done)
    clusters;
  let entry ~row ~col =
    let cl = clusters.(col_cluster.(col)) in
    let ii = col_power.(col) in
    if row = 0 then if ii = 0 then Cx.one else Cx.zero
    else begin
      let j = row in
      let sign = if ii mod 2 = 0 then 1. else -1. in
      Cx.scale (sign *. binom (ii + j - 1) (j - 1)) (Cx.pow_int cl.node (ii + j))
    end
  in
  let slope_entry ~col =
    let cl = clusters.(col_cluster.(col)) in
    match col_power.(col) with
    | 0 -> Cx.inv cl.node (* p_c = 1 / z_c *)
    | 1 -> Cx.one
    | _ -> Cx.zero
  in
  let rhs = Array.copy mu in
  let m =
    Cmatrix.init q q (fun row col ->
        match slope with
        | Some _ when row = q - 1 -> slope_entry ~col
        | Some _ | None -> entry ~row ~col)
  in
  (match slope with
  | Some d -> rhs.(q - 1) <- d
  | None -> ());
  let k = Cmatrix.solve m rhs in
  (* regroup flat solution into per-cluster arrays *)
  Array.mapi
    (fun c cl ->
      let base = ref 0 in
      for c' = 0 to c - 1 do
        base := !base + clusters.(c').multiplicity
      done;
      Array.init cl.multiplicity (fun ii -> k.(!base + ii)))
    clusters
