(** Dense complex matrices and vectors with LU solve.

    Complex linear systems arise in AWE when solving the Vandermonde
    residue equations (paper, eq. 20) with complex approximating poles.
    The systems are tiny (order q, typically <= 8), so a straightforward
    dense implementation with partial pivoting is appropriate. *)

type vec = Cx.t array

type t = Cx.t array array

exception Singular of int

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> Cx.t) -> t

val identity : int -> t

val of_real : Matrix.t -> t

val rows : t -> int

val cols : t -> int

val mul_vec : t -> vec -> vec

val vec_of_real : Vec.t -> vec

val vec_approx_equal : ?tol:float -> vec -> vec -> bool

val vec_norm_inf : vec -> float

val solve : t -> vec -> vec
(** [solve a b] solves [a x = b] by LU with partial pivoting on
    magnitude.  Raises [Singular] on pivot breakdown.  [a] is not
    modified. *)

val solve_many : t -> vec list -> vec list
(** Factor once, solve several right-hand sides. *)

val pp : Format.formatter -> t -> unit
