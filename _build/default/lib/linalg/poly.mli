(** Real-coefficient polynomials and complex root finding.

    AWE forms the characteristic polynomial of the reduced model from
    the moment-matrix solution (paper, eq. 25); its roots are the
    reciprocals of the approximating poles.  Orders are small (the paper
    uses q <= 4, we support arbitrary q), so robustness matters more
    than asymptotic speed: closed forms are used through degree 2 and
    the Aberth-Ehrlich simultaneous iteration beyond. *)

type t = float array
(** [p.(i)] is the coefficient of [x^i].  The representation is not
    required to be normalized; trailing zeros are ignored by [degree]. *)

val degree : t -> int
(** Degree after discarding trailing (high-order) zero coefficients;
    [-1] for the zero polynomial. *)

val eval : t -> float -> float
(** Horner evaluation at a real point. *)

val eval_cx : t -> Cx.t -> Cx.t
(** Horner evaluation at a complex point. *)

val derivative : t -> t

val of_roots : Cx.t list -> t
(** Monic polynomial with the given complex roots.  The roots must come
    in conjugate pairs (up to roundoff) for the result to be real; the
    imaginary residue of each coefficient is discarded. *)

val mul : t -> t -> t

val add : t -> t -> t

val scale : float -> t -> t

val roots : ?max_iter:int -> ?tol:float -> t -> Cx.t list
(** All complex roots, with multiplicity, sorted by ascending magnitude.
    Exact zero roots (vanishing low-order coefficients) are deflated
    first.  Raises [Invalid_argument] on the zero polynomial.
    Real-coefficient conjugate symmetry is enforced on the result: roots
    whose imaginary part is negligible relative to the root magnitude
    are snapped to the real axis and near-conjugate pairs are averaged. *)

val pp : Format.formatter -> t -> unit
