type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let re x = { re = x; im = 0. }
let make re im = { re; im }
let ( +: ) = Complex.add
let ( -: ) = Complex.sub
let ( *: ) = Complex.mul
let ( /: ) = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let inv = Complex.inv
let abs = Complex.norm
let arg = Complex.arg
let exp = Complex.exp
let sqrt = Complex.sqrt

let pow_int z k =
  if k = 0 then one
  else begin
    let base = if k > 0 then z else inv z in
    let k = Stdlib.abs k in
    (* binary exponentiation *)
    let rec go acc base k =
      if k = 0 then acc
      else
        let acc = if k land 1 = 1 then acc *: base else acc in
        go acc (base *: base) (k lsr 1)
    in
    go one base k
  end

let scale a z = { re = a *. z.re; im = a *. z.im }

let is_real ?(tol = 1e-9) z = Float.abs z.im <= tol *. Float.max 1. (Float.abs z.re)

let approx_equal ?(tol = 1e-9) a b = abs (a -: b) <= tol

let compare_by_magnitude a b =
  let c = Float.compare (abs a) (abs b) in
  if c <> 0 then c else Float.compare (arg a) (arg b)

let pp ppf z =
  if z.im = 0. then Format.fprintf ppf "%.5g" z.re
  else if z.im > 0. then Format.fprintf ppf "%.5g+%.5gj" z.re z.im
  else Format.fprintf ppf "%.5g-%.5gj" z.re (-.z.im)
