(** The double-time-constant baseline (paper, Section 2.3).

    Chu and Horowitz extended the Elmore estimate with a two-pole model
    for RC meshes with charge sharing; in moment language this is
    exactly a second-order match of the first four moments restricted
    to real poles.  AWE generalizes it (arbitrary order, complex
    poles); this module packages the restricted model as a named
    baseline for the comparison benchmarks. *)

exception Not_applicable of string
(** The second-order match does not exist (degenerate moments) or
    yields a complex or unstable pole pair — the situations in which
    the paper argues the one- and two-pole models "may be unable to
    provide a means of handling the nonmonotone waveforms" (Section
    2.4). *)

type t = {
  p1 : float;  (** dominant pole (negative) *)
  k1 : float;
  p2 : float;  (** second pole (negative) *)
  k2 : float;
  v_final : float;
}

val fit : Circuit.Mna.t -> node:Circuit.Element.node -> t
(** Fit the two-real-pole step-response model at a node. *)

val eval : t -> float -> float
(** [v_final + k1 e^(p1 t) + k2 e^(p2 t)]. *)

val delay_50pct : t -> float option
(** Time to reach halfway from [eval t 0.] to [v_final]. *)
