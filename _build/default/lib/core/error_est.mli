(** Accuracy estimation for AWE approximations (paper, Section 3.4).

    The paper measures accuracy as the L2 waveform difference between
    the q-pole approximation and the exact response (eq. 35),
    approximated by substituting the (q+1)-pole model for the exact
    response (eq. 39).  Because the difference of two stable
    exponential sums has a closed-form L2 norm, the estimate never
    integrates numerically.

    Two estimators are provided: the {e exact} L2 distance between the
    two models (all cross terms, still only O(q^2) scalar operations),
    and the paper's {e Cauchy-inequality bound} (eqs. 40-46) which
    pairs nearest terms and over-estimates — kept for the ablation
    benchmark that reproduces the paper's arithmetic. *)

val l2_norm_sq : Approx.transient -> float
(** [integral of x_h(t)^2 dt] in closed form; requires a stable
    transient (raises [Invalid_argument] otherwise). *)

val l2_distance : Approx.transient -> Approx.transient -> float
(** Exact L2 distance between two stable transients. *)

val relative_error : exact:Approx.transient -> Approx.transient -> float
(** [l2_distance exact approx / sqrt (l2_norm_sq exact)] — the paper's
    normalized "error term" (eqs. 35-39), as a fraction (0.36 = 36%). *)

val cauchy_bound : exact:Approx.transient -> Approx.transient -> float
(** The paper's pairing bound on the (relative) error: terms of the two
    models are greedily paired by pole proximity, the surplus exact
    term is split against the residual of its nearest partner
    (eqs. 42-43), and per-pair differences integrate by eq. 45.
    Returns an upper estimate of the relative error.  Requires simple
    poles; falls back to [relative_error] when either transient has a
    repeated pole. *)
