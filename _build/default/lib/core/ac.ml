open Linalg
open Cx

let exact_response sys ~src_col ~node ~omegas =
  let g = Circuit.Mna.g sys in
  let c = Circuit.Mna.c sys in
  let b = Circuit.Mna.b sys in
  let n = Circuit.Mna.size sys in
  let out_var = Circuit.Mna.node_var sys node in
  if out_var < 0 then invalid_arg "Ac.exact_response: output cannot be ground";
  if src_col < 0 || src_col >= Circuit.Mna.source_count sys then
    invalid_arg "Ac.exact_response: bad source column";
  let rhs = Array.init n (fun i -> Cx.re b.(i).(src_col)) in
  Array.map
    (fun omega ->
      let s = Cx.make 0. omega in
      let m =
        Cmatrix.init n n (fun i j -> Cx.re g.(i).(j) +: (s *: Cx.re c.(i).(j)))
      in
      (Cmatrix.solve m rhs).(out_var))
    omegas

let model_response ~dc_gain terms ~omegas =
  Array.map
    (fun omega ->
      let s = Cx.make 0. omega in
      List.fold_left
        (fun acc { Approx.pole; coeffs } ->
          let acc = ref acc in
          Array.iteri
            (fun i k ->
              (* term K t^i e^(pt)/i! has transform K/(s-p)^(i+1);
                 times s for the step-input transfer function *)
              acc :=
                !acc +: (k *: s /: Cx.pow_int (s -: pole) (i + 1)))
            coeffs;
          !acc)
        (Cx.re dc_gain) terms)
    omegas

let magnitude_db h =
  Array.map (fun z -> 20. *. Float.log10 (Float.max (Cx.abs z) 1e-300)) h

let log_sweep ~f_start ~f_stop ~points =
  if points < 2 then invalid_arg "Ac.log_sweep: need at least 2 points";
  if f_start <= 0. || f_stop <= f_start then
    invalid_arg "Ac.log_sweep: need 0 < f_start < f_stop";
  let l0 = Float.log10 f_start and l1 = Float.log10 f_stop in
  Array.init points (fun i ->
      let frac = float_of_int i /. float_of_int (points - 1) in
      2. *. Float.pi *. Float.pow 10. (l0 +. (frac *. (l1 -. l0))))
