(** The classical RC-tree methods (paper, Section II) — the baselines
    AWE subsumes.

    On an RC tree driven by a step, the Elmore delay at node [i] is
    [T_D(i) = sum_k R(path(i) intersect path(k)) C_k] (eq. 50),
    computable in O(n) by a tree walk [Penfield-Rubinstein]; the
    Penfield-Rubinstein waveform model is the single exponential
    [v(t) = v_inf (1 - exp(-t / T_D))] (eq. 2). *)

val delays : Circuit.Netlist.circuit -> float array
(** [delays ckt] is the Elmore delay of every node (indexed by node id;
    ground and source nodes get [0.]).  Raises [Invalid_argument] if
    the circuit is not an RC tree (use {!Awe.elmore_equivalent} for the
    moment-based generalization). *)

val delay : Circuit.Netlist.circuit -> Circuit.Element.node -> float
(** Elmore delay of one node. *)

val single_exponential :
  Circuit.Netlist.circuit ->
  Circuit.Element.node ->
  v_final:float ->
  float ->
  float
(** [single_exponential ckt node ~v_final t] evaluates the
    Penfield-Rubinstein model (eq. 2) at time [t]. *)

val scaled_delay :
  Circuit.Mna.t -> node:Circuit.Element.node -> float
(** The grounded-resistor extension (eq. 3):
    [T_D = integral (v_inf - v(t)) dt / (v_inf - v(0))], computed from
    the first two moments; works on any topology with a DC solution and
    coincides with [delays] on RC trees. *)
