lib/core/approx.ml: Array Cx Float Linalg List Poly Waveform
