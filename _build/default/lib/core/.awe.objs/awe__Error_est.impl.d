lib/core/error_est.ml: Approx Array Cx Float Hashtbl Linalg List Stdlib
