lib/core/ac.mli: Approx Circuit Linalg
