lib/core/tree_link.ml: Array Circuit Linalg List Printf Queue
