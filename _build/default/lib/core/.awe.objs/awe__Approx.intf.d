lib/core/approx.mli: Linalg Waveform
