lib/core/two_pole.mli: Circuit
