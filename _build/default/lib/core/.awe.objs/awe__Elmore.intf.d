lib/core/elmore.mli: Circuit
