lib/core/awe.mli: Ac Approx Circuit Elmore Error_est Linalg Moment_match Moments Tree_link Two_pole Waveform
