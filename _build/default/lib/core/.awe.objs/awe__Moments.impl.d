lib/core/moments.ml: Array Circuit Float Linalg Lu Matrix Sparse Vec
