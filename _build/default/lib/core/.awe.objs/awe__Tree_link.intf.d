lib/core/tree_link.mli: Circuit
