lib/core/moment_match.ml: Approx Array Cmatrix Cx Float Hankel Linalg List Option Poly Printf Vandermonde
