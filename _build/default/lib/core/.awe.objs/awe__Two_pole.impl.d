lib/core/two_pole.ml: Approx Array Circuit Float Linalg Moment_match Moments
