lib/core/awe.ml: Ac Approx Array Circuit Cx Elmore Error_est Float Linalg List Moment_match Moments Tree_link Two_pole
