lib/core/moment_match.mli: Approx Linalg
