lib/core/ac.ml: Approx Array Circuit Cmatrix Cx Float Linalg List
