lib/core/elmore.ml: Array Circuit Float List Moments
