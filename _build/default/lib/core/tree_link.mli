(** Tree/link moment computation (paper, Section IV).

    For RC trees — and RC meshes whose extra resistors (including
    grounded ones, Fig. 9) are treated as links closing loops over a
    spanning tree — every AWE moment is a DC solution of the circuit
    with capacitors replaced by current sources (Fig. 5), and each such
    solve costs O(n + L^2) where [L] is the number of links: subtree
    current sums up the tree, voltage accumulation down the tree, and a
    small dense link-current correction (eqs. 51-62).  A first moment
    computed this way {e is} the vector of Elmore delays (eq. 56).

    Scope of this fast path (the general [Moments] engine handles
    everything else): a single grounded voltage source with a step
    waveform, resistors, grounded capacitors, and initial conditions
    either absent or specified on every capacitor. *)

exception Unsupported of string

type t

val prepare : Circuit.Netlist.circuit -> t
(** Build the spanning tree, pick the links, and factor the link
    system.  Raises [Unsupported] when the circuit is outside the fast
    path's scope. *)

val link_count : t -> int

val moments : t -> node:Circuit.Element.node -> count:int -> float array
(** The moment sequence [mu] at a capacitor-bearing node, identical to
    [Moments.mu] on the same circuit.  Raises [Unsupported] when the
    node carries no grounded capacitor. *)

val moment_vector : t -> k:int -> float array
(** [moment_vector t ~k] is the moment vector [w_k] for all nodes
    (indexed by node id).  [w_1] is the negated Elmore-delay scaled
    vector of eq. 56: for a 5 V step from rest,
    [w_1(i) = 5 * T_D(i)]. *)
