exception Unsupported of string

type t = {
  ckt : Circuit.Netlist.circuit;
  n : int; (* node count *)
  order : int array; (* BFS order from the source node, tree nodes only *)
  parent : int array; (* parent node in the tree; -1 for roots *)
  edge_r : float array; (* resistance of the edge to the parent *)
  links : (int * int * float) array; (* (a, b, R) non-tree resistors *)
  link_solver : Linalg.Lu.t option; (* factored link system *)
  phi : float array array; (* unit link-current voltage profiles *)
  cap : float array; (* grounded capacitance per node *)
  v_init : float array; (* node voltages at t = 0 *)
  v_ss : float array; (* steady-state node voltages *)
}

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* tree solve: node voltages for injections [inj] (current pushed into
   each node) with the source forced to [u]. O(n). *)
let tree_solve st ~u ~inj =
  let n = st.n in
  (* subtree injection sums, children before parents: reverse BFS *)
  let s = Array.copy inj in
  for i = Array.length st.order - 1 downto 0 do
    let node = st.order.(i) in
    let p = st.parent.(node) in
    if p >= 0 then s.(p) <- s.(p) +. s.(node)
  done;
  let v = Array.make n 0. in
  Array.iter
    (fun node ->
      let p = st.parent.(node) in
      if p < 0 then v.(node) <- u
      else v.(node) <- v.(p) +. (st.edge_r.(node) *. s.(node)))
    st.order;
  v

(* full solve: tree + link correction *)
let solve st ~u ~inj =
  let v0 = tree_solve st ~u ~inj in
  match st.link_solver with
  | None -> v0
  | Some f ->
    let rhs =
      Array.map (fun (a, b, _) -> -.(v0.(a) -. v0.(b))) st.links
    in
    let i_link = Linalg.Lu.solve f rhs in
    let v = Array.copy v0 in
    Array.iteri
      (fun m im ->
        let profile = st.phi.(m) in
        for node = 0 to st.n - 1 do
          v.(node) <- v.(node) +. (im *. profile.(node))
        done)
      i_link;
    v

let prepare (ckt : Circuit.Netlist.circuit) =
  let n = ckt.Circuit.Netlist.node_count in
  (* classify elements *)
  let source = ref None in
  let resistors = ref [] in
  let cap = Array.make n 0. in
  let cap_ic : float option array = Array.make n None in
  let any_ic = ref false and any_cap_without_ic = ref false in
  Array.iter
    (fun e ->
      match e with
      | Circuit.Element.Vsource { np; nn; wave; _ } ->
        if !source <> None then
          unsupported "tree/link fast path handles a single source";
        let node, sign =
          if nn = Circuit.Element.ground then (np, 1.)
          else if np = Circuit.Element.ground then (nn, -1.)
          else unsupported "source must be grounded"
        in
        source := Some (node, sign, wave)
      | Circuit.Element.Resistor { np; nn; r; _ } ->
        resistors := (np, nn, r) :: !resistors
      | Circuit.Element.Capacitor { np; nn; c; ic; _ } ->
        let node =
          if nn = Circuit.Element.ground then np
          else if np = Circuit.Element.ground then nn
          else unsupported "floating capacitor: use the general engine"
        in
        cap.(node) <- cap.(node) +. c;
        (match ic with
        | Some v ->
          any_ic := true;
          cap_ic.(node) <- Some (v *. if nn = Circuit.Element.ground then 1. else -1.)
        | None -> any_cap_without_ic := true)
      | _ ->
        unsupported "element %s outside the tree/link fast path"
          (Circuit.Element.name e))
    ckt.Circuit.Netlist.elements;
  let src_node, src_sign, src_wave =
    match !source with
    | Some s -> s
    | None -> unsupported "no driving voltage source"
  in
  if !any_ic && !any_cap_without_ic then
    unsupported
      "initial conditions must be given on every capacitor or none";
  let canon = Circuit.Element.canonicalize src_wave in
  (match canon.Circuit.Element.breaks, canon.Circuit.Element.slope0 with
  | [], 0. -> ()
  | _ -> unsupported "tree/link fast path handles step sources only");
  (* BFS spanning tree over resistors from the source node *)
  let adj = Array.make n [] in
  List.iteri
    (fun idx (a, b, r) ->
      adj.(a) <- (b, idx, r) :: adj.(a);
      adj.(b) <- (a, idx, r) :: adj.(b))
    !resistors;
  let parent = Array.make n (-1) in
  let edge_r = Array.make n 0. in
  let in_tree = Array.make (List.length !resistors) false in
  let visited = Array.make n false in
  visited.(src_node) <- true;
  visited.(Circuit.Element.ground) <- true;
  let order = ref [ src_node ] in
  let queue = Queue.create () in
  Queue.add src_node queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun (w, idx, r) ->
        if not visited.(w) then begin
          visited.(w) <- true;
          parent.(w) <- v;
          edge_r.(w) <- r;
          in_tree.(idx) <- true;
          order := w :: !order;
          Queue.add w queue
        end)
      (List.rev adj.(v))
  done;
  (* every node with a capacitor must be reached *)
  Array.iteri
    (fun node c ->
      if c > 0. && not visited.(node) then
        unsupported "capacitor node %s unreachable from the source"
          ckt.Circuit.Netlist.node_names.(node))
    cap;
  let order = Array.of_list (List.rev !order) in
  let links =
    List.filteri (fun idx _ -> not in_tree.(idx)) !resistors
    |> Array.of_list
  in
  let st0 =
    { ckt;
      n;
      order;
      parent;
      edge_r;
      links;
      link_solver = None;
      phi = [||];
      cap;
      v_init = [||];
      v_ss = [||] }
  in
  (* unit link-current voltage profiles and the factored link system *)
  let nl = Array.length links in
  let phi =
    Array.map
      (fun (a, b, _) ->
        let inj = Array.make n 0. in
        if a <> Circuit.Element.ground then inj.(a) <- -1.;
        if b <> Circuit.Element.ground then inj.(b) <- 1.;
        tree_solve st0 ~u:0. ~inj)
      links
  in
  let link_solver =
    if nl = 0 then None
    else begin
      let m =
        Linalg.Matrix.init nl nl (fun l k ->
            let a, b, r = links.(l) in
            phi.(k).(a) -. phi.(k).(b) -. if l = k then r else 0.)
      in
      match Linalg.Lu.factor m with
      | f -> Some f
      | exception Linalg.Lu.Singular _ ->
        unsupported "link system is singular"
    end
  in
  let st = { st0 with phi; link_solver } in
  let zero_inj = Array.make n 0. in
  let u_pre = src_sign *. canon.Circuit.Element.pre in
  let u_0 = src_sign *. canon.Circuit.Element.v0 in
  let v_ss = solve st ~u:u_0 ~inj:zero_inj in
  let v_pre = solve st ~u:u_pre ~inj:zero_inj in
  let v_init =
    if !any_ic then
      Array.init n (fun node ->
          match cap_ic.(node) with Some v -> v | None -> v_pre.(node))
    else v_pre
  in
  { st with v_init; v_ss }

let link_count st = Array.length st.links

let moment_vectors st ~count =
  let w0 = Array.init st.n (fun i -> st.v_init.(i) -. st.v_ss.(i)) in
  let ws = Array.make count w0 in
  for j = 1 to count - 1 do
    let inj = Array.mapi (fun node c -> c *. ws.(j - 1).(node)) st.cap in
    ws.(j) <- Array.map (fun v -> -.v) (solve st ~u:0. ~inj)
  done;
  ws

let moments st ~node ~count =
  if node < 0 || node >= st.n then invalid_arg "Tree_link.moments: bad node";
  if st.cap.(node) <= 0. then
    unsupported "node %s carries no grounded capacitor"
      st.ckt.Circuit.Netlist.node_names.(node);
  let ws = moment_vectors st ~count in
  Array.map (fun w -> w.(node)) ws

let moment_vector st ~k =
  if k < 0 then invalid_arg "Tree_link.moment_vector: negative index";
  (moment_vectors st ~count:(k + 1)).(k)
