exception Not_applicable of string

type t = { p1 : float; k1 : float; p2 : float; k2 : float; v_final : float }

let fit sys ~node =
  let out_var = Circuit.Mna.node_var sys node in
  if out_var < 0 then raise (Not_applicable "output is the ground node");
  let engine = Moments.make sys in
  let op0 = Circuit.Dc.initial sys in
  let op0p = Circuit.Dc.at_zero_plus sys op0 in
  let prob = Moments.base_problem engine op0p in
  let mu = Moments.mu (Moments.vectors engine prob ~count:4) ~out_var in
  let terms =
    try Moment_match.fit ~check_stability:true ~q:2 mu with
    | Moment_match.No_fit msg -> raise (Not_applicable msg)
    | Moment_match.Unstable _ ->
      raise (Not_applicable "unstable two-pole fit")
  in
  match terms with
  | [ a; b ] ->
    if
      (not (Linalg.Cx.is_real a.Approx.pole))
      || not (Linalg.Cx.is_real b.Approx.pole)
    then raise (Not_applicable "complex pole pair: two-pole model invalid")
    else begin
      let v_final = prob.Moments.d0.(out_var) in
      { p1 = a.Approx.pole.Linalg.Cx.re;
        k1 = a.Approx.coeffs.(0).Linalg.Cx.re;
        p2 = b.Approx.pole.Linalg.Cx.re;
        k2 = b.Approx.coeffs.(0).Linalg.Cx.re;
        v_final }
    end
  | [ single ] ->
    (* degenerate but usable: one active pole *)
    { p1 = single.Approx.pole.Linalg.Cx.re;
      k1 = single.Approx.coeffs.(0).Linalg.Cx.re;
      p2 = single.Approx.pole.Linalg.Cx.re *. 100.;
      k2 = 0.;
      v_final = prob.Moments.d0.(out_var) }
  | _ -> raise (Not_applicable "repeated pole in two-pole fit")

let eval m t =
  m.v_final +. (m.k1 *. exp (m.p1 *. t)) +. (m.k2 *. exp (m.p2 *. t))

let delay_50pct m =
  let v0 = eval m 0. in
  if v0 = m.v_final then None
  else begin
    let target = 0.5 *. (v0 +. m.v_final) in
    (* bisection over an interval bracketing the dominant time scale *)
    let t_max = 50. /. Float.abs m.p1 in
    let rising = m.v_final > v0 in
    let crossed v = if rising then v >= target else v <= target in
    if not (crossed (eval m t_max)) then None
    else begin
      let lo = ref 0. and hi = ref t_max in
      for _ = 1 to 100 do
        let mid = 0.5 *. (!lo +. !hi) in
        if crossed (eval m mid) then hi := mid else lo := mid
      done;
      Some (0.5 *. (!lo +. !hi))
    end
  end
