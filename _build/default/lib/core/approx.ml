open Linalg

type term = { pole : Cx.t; coeffs : Cx.t array }

type transient = term list

let factorial =
  let table = Array.make 32 1. in
  for i = 1 to 31 do
    table.(i) <- table.(i - 1) *. float_of_int i
  done;
  fun n -> if n < 32 then table.(n) else Float.infinity

let eval_transient terms t =
  List.fold_left
    (fun acc { pole; coeffs } ->
      let ept = Cx.exp (Cx.scale t pole) in
      let sum = ref Cx.zero in
      Array.iteri
        (fun i k ->
          let tpow = Float.pow t (float_of_int i) /. factorial i in
          sum := Cx.(!sum +: scale tpow k))
        coeffs;
      acc +. Cx.(ept *: !sum).Cx.re)
    0. terms

let transient_poles terms =
  List.concat_map
    (fun { pole; coeffs } -> List.init (Array.length coeffs) (fun _ -> pole))
    terms
  |> List.sort Cx.compare_by_magnitude

let transient_stable terms =
  List.for_all (fun { pole; _ } -> pole.Cx.re < 0.) terms

let dc_gain_residues terms =
  List.map (fun { pole; coeffs } -> (pole, coeffs.(0))) terms

let zeros terms =
  List.iter
    (fun t ->
      if Array.length t.coeffs > 1 then
        invalid_arg "Approx.zeros: repeated poles not supported")
    terms;
  let q = List.length terms in
  if q <= 1 then []
  else begin
    (* numerator coefficients, built in complex arithmetic: for each
       term, multiply its residue into the product of the other pole
       factors and accumulate *)
    let poles = Array.of_list (List.map (fun t -> t.pole) terms) in
    let residues = Array.of_list (List.map (fun t -> t.coeffs.(0)) terms) in
    let acc = Array.make q Cx.zero in
    for l = 0 to q - 1 do
      (* prod_(m<>l) (s - p_m), degree q-1 *)
      let prod = ref [| Cx.one |] in
      for m = 0 to q - 1 do
        if m <> l then begin
          let p = !prod in
          let n = Array.length p in
          let next = Array.make (n + 1) Cx.zero in
          Array.iteri (fun i c -> next.(i + 1) <- Cx.( +: ) next.(i + 1) c) p;
          Array.iteri
            (fun i c ->
              next.(i) <- Cx.( -: ) next.(i) (Cx.( *: ) poles.(m) c))
            p;
          prod := next
        end
      done;
      Array.iteri
        (fun i c -> acc.(i) <- Cx.( +: ) acc.(i) (Cx.( *: ) residues.(l) c))
        !prod
    done;
    (* conjugate-closed inputs give real coefficients *)
    let coeffs = Array.map (fun c -> c.Cx.re) acc in
    if Array.for_all (fun c -> Float.abs c < 1e-300) coeffs then []
    else Poly.roots coeffs
  end

type component = {
  t_shift : float;
  scale : float;
  p_const : float;
  p_slope : float;
  transient : transient;
}

type response = component list

let eval comps t =
  List.fold_left
    (fun acc c ->
      if t < c.t_shift then acc
      else begin
        let tau = t -. c.t_shift in
        acc
        +. (c.scale
           *. (c.p_const +. (c.p_slope *. tau) +. eval_transient c.transient tau))
      end)
    0. comps

let waveform comps ~t_stop ~samples =
  Waveform.of_fun ~t_stop ~samples (eval comps)

let steady_value comps =
  let net_slope =
    List.fold_left (fun acc c -> acc +. (c.scale *. c.p_slope)) 0. comps
  in
  let magnitude =
    List.fold_left
      (fun acc c -> acc +. Float.abs (c.scale *. c.p_slope))
      1e-300 comps
  in
  if Float.abs net_slope > 1e-9 *. magnitude then
    invalid_arg "Approx.steady_value: response grows without bound";
  (* constants plus the bounded combination of cancelled slopes:
     sum scale*(p_const + p_slope*(t - t_shift)) -> sum scale*p_const
     - sum scale*p_slope*t_shift as t -> infinity *)
  List.fold_left
    (fun acc c ->
      acc +. (c.scale *. (c.p_const -. (c.p_slope *. c.t_shift))))
    0. comps

let crossing_time ?(rising = true) comps ~threshold ~t_max =
  if t_max <= 0. then invalid_arg "Approx.crossing_time: t_max must be > 0";
  let samples = 2048 in
  let dt = t_max /. float_of_int samples in
  let crossed a b =
    if rising then a < threshold && b >= threshold
    else a > threshold && b <= threshold
  in
  let rec bisect lo hi vlo iters =
    if iters = 0 then 0.5 *. (lo +. hi)
    else begin
      let mid = 0.5 *. (lo +. hi) in
      let vmid = eval comps mid in
      if crossed vlo vmid then bisect lo mid vlo (iters - 1)
      else bisect mid hi vmid (iters - 1)
    end
  in
  let result = ref None in
  (try
     let prev = ref (eval comps 0.) in
     for i = 1 to samples do
       let t = dt *. float_of_int i in
       let v = eval comps t in
       if crossed !prev v then begin
         result := Some (bisect (t -. dt) t !prev 60);
         raise Exit
       end;
       prev := v
     done
   with Exit -> ());
  !result
