(** Moment matching: from a scalar moment sequence to the reduced
    q-pole model (paper, Section 3.1 and eqs. 24-29).

    The pipeline is: frequency-scale the moments (eq. 47) so the
    Hankel matrix stays well conditioned; solve the Hankel system for
    the characteristic polynomial (eq. 24); root it for the reciprocal
    poles (eq. 25); cluster any coincident roots; and solve the
    (confluent) Vandermonde system for the residues (eqs. 20, 29). *)

exception No_fit of string
(** The moment matrix is singular at this order (degenerate response;
    paper Section 3.3 — escalate the order), or root finding failed. *)

exception Unstable of Linalg.Cx.t list
(** The fit produced poles with non-negative real part.  The paper's
    remedy (Section 3.3) is a higher order; callers that want the raw
    fit anyway can use [~check_stability:false]. *)

val scale_factor : float array -> float
(** The frequency normalization [tau = |mu_1 / mu_0|] (the paper's
    [gamma = m_(-1)/m_0], a dominant-time-constant estimate), falling
    back to later ratios when [mu_0] vanishes, and to [1.] when no
    information is available. *)

val poles :
  ?scale:bool -> ?shift:float -> q:int -> float array -> Linalg.Cx.t list
(** [poles ~q mu] computes the [q] approximating poles from at least
    [2q] moments.  [scale] (default [true]) applies frequency scaling;
    the ablation benchmark turns it off.  [shift] is the expansion
    point the moments were generated about (see {!Moments.make}): the
    recovered reciprocal roots [z] map back as [p = shift + 1/z].
    Raises [No_fit]. *)

val fit :
  ?scale:bool ->
  ?check_stability:bool ->
  ?shift:float ->
  ?slope:float ->
  q:int ->
  float array ->
  Approx.transient
(** Full fit: poles plus residues as an evaluable transient.  When
    [slope] is given, the highest moment condition is replaced by the
    initial-derivative condition (the paper's [m_(-2)] matching,
    Section 4.3), which pins the [t = 0] slope of the model.
    [check_stability] (default [true]) raises [Unstable] on
    right-half-plane poles.  Raises [No_fit]. *)

val condition_number : ?scale:bool -> q:int -> float array -> float
(** Reciprocal condition estimate of the (scaled) moment matrix — the
    quantity the frequency-scaling ablation reports. *)
