let delays ckt =
  let parents = Circuit.Topology.rc_tree_parent ckt in
  let n = ckt.Circuit.Netlist.node_count in
  (* total grounded capacitance at each node *)
  let cap = Array.make n 0. in
  Array.iter
    (fun e ->
      match e with
      | Circuit.Element.Capacitor { np; nn; c; _ } ->
        if nn = Circuit.Element.ground then cap.(np) <- cap.(np) +. c
        else cap.(nn) <- cap.(nn) +. c
      | _ -> ())
    ckt.Circuit.Netlist.elements;
  (* children lists from the parent array *)
  let children = Array.make n [] in
  Array.iteri
    (fun node parent ->
      match parent with
      | Some (p, _) -> children.(p) <- node :: children.(p)
      | None -> ())
    parents;
  (* subtree capacitance by post-order accumulation *)
  let subtree = Array.copy cap in
  let rec accumulate node =
    List.iter
      (fun child ->
        accumulate child;
        subtree.(node) <- subtree.(node) +. subtree.(child))
      children.(node)
  in
  (* roots: nodes with no parent *)
  let t_d = Array.make n 0. in
  Array.iteri
    (fun node parent -> if parent = None then accumulate node)
    parents;
  (* pre-order: T_D(child) = T_D(parent) + R_edge * subtree_cap(child) *)
  let rec walk node =
    List.iter
      (fun child ->
        let r =
          match parents.(child) with Some (_, r) -> r | None -> 0.
        in
        t_d.(child) <- t_d.(node) +. (r *. subtree.(child));
        walk child)
      children.(node)
  in
  Array.iteri (fun node parent -> if parent = None then walk node) parents;
  t_d

let delay ckt node = (delays ckt).(node)

let single_exponential ckt node ~v_final t =
  let td = delay ckt node in
  if td <= 0. then v_final else v_final *. (1. -. exp (-.t /. td))

let scaled_delay sys ~node =
  let out_var = Circuit.Mna.node_var sys node in
  if out_var < 0 then
    invalid_arg "Elmore.scaled_delay: output cannot be ground";
  let engine = Moments.make sys in
  let op0 = Circuit.Dc.initial sys in
  let op0p = Circuit.Dc.at_zero_plus sys op0 in
  let prob = Moments.base_problem engine op0p in
  let mu = Moments.mu (Moments.vectors engine prob ~count:2) ~out_var in
  if Float.abs mu.(0) < 1e-300 then 0. else -.(mu.(1) /. mu.(0))
