open Linalg
open Cx

(* flatten a transient into (pole, power, coefficient) monomials
   K t^i e^(pt) / i! *)
let monomials terms =
  List.concat_map
    (fun { Approx.pole; coeffs } ->
      Array.to_list coeffs
      |> List.mapi (fun i k -> (pole, i, k))
      |> List.filter (fun (_, _, k) -> Cx.abs k > 0.))
    terms

let check_stable name terms =
  if not (Approx.transient_stable terms) then
    invalid_arg ("Error_est." ^ name ^ ": transient is unstable")

(* closed form: integral over [0, inf) of
     (K_a t^i e^(p_a t)/i!) (K_b t^j e^(p_b t)/j!)
   = K_a K_b (i+j)! / (i! j! (-(p_a+p_b))^(i+j+1)) *)
let inner_product ms_a ms_b =
  let fact n =
    let rec go acc k = if k <= 1 then acc else go (acc *. float_of_int k) (k - 1) in
    go 1. n
  in
  List.fold_left
    (fun acc (pa, i, ka) ->
      List.fold_left
        (fun acc (pb, j, kb) ->
          let s = pa +: pb in
          let coeff = fact (i + j) /. (fact i *. fact j) in
          let denom = Cx.pow_int (Cx.neg s) (i + j + 1) in
          acc +: Cx.scale coeff (ka *: kb /: denom))
        acc ms_b)
    Cx.zero ms_a

let l2_norm_sq terms =
  check_stable "l2_norm_sq" terms;
  let v = inner_product (monomials terms) (monomials terms) in
  Float.max 0. v.Cx.re

let l2_distance a b =
  check_stable "l2_distance" a;
  check_stable "l2_distance" b;
  let negated =
    List.map
      (fun t -> { t with Approx.coeffs = Array.map Cx.neg t.Approx.coeffs })
      b
  in
  let ms = monomials (a @ negated) in
  let v = inner_product ms ms in
  Stdlib.sqrt (Float.max 0. v.Cx.re)

let relative_error ~exact approx =
  let norm = Stdlib.sqrt (l2_norm_sq exact) in
  if norm = 0. then l2_distance exact approx
  else l2_distance exact approx /. norm

(* ------------------------------------------------------------------ *)
(* The paper's Cauchy-inequality pairing bound (eqs. 40-46).           *)

(* a "unit" is a real-valued building block: either a single real-pole
   term or a conjugate pole pair *)
type unit_fn = {
  rep_pole : Cx.t; (* representative pole (upper half plane for pairs) *)
  residue : Cx.t; (* leading residue of the representative *)
  fn : (Cx.t * int * Cx.t) list; (* monomials of the real function *)
}

let has_repeated terms =
  List.exists (fun t -> Array.length t.Approx.coeffs > 1) terms

let units_of terms =
  (* group conjugate pairs greedily *)
  let remaining = ref (List.filter (fun t -> Cx.abs t.Approx.coeffs.(0) > 0.) terms) in
  let out = ref [] in
  while !remaining <> [] do
    match !remaining with
    | [] -> ()
    | t :: rest ->
      if Cx.is_real t.Approx.pole then begin
        remaining := rest;
        out :=
          { rep_pole = t.Approx.pole;
            residue = t.Approx.coeffs.(0);
            fn = [ (t.Approx.pole, 0, t.Approx.coeffs.(0)) ] }
          :: !out
      end
      else begin
        (* find the conjugate partner *)
        let conj_pole = Cx.conj t.Approx.pole in
        let partner, others =
          List.partition
            (fun t' -> Cx.abs (t'.Approx.pole -: conj_pole) <= 1e-9 *. Cx.abs conj_pole)
            rest
        in
        match partner with
        | p :: extra ->
          remaining := extra @ others;
          let rep =
            if t.Approx.pole.Cx.im > 0. then t else p
          in
          let other = if rep == t then p else t in
          out :=
            { rep_pole = rep.Approx.pole;
              residue = rep.Approx.coeffs.(0);
              fn =
                [ (rep.Approx.pole, 0, rep.Approx.coeffs.(0));
                  (other.Approx.pole, 0, other.Approx.coeffs.(0)) ] }
            :: !out
        | [] ->
          (* unpaired complex term: treat alone (its real part) *)
          remaining := others;
          out :=
            { rep_pole = t.Approx.pole;
              residue = t.Approx.coeffs.(0);
              fn = [ (t.Approx.pole, 0, t.Approx.coeffs.(0)) ] }
            :: !out
      end
  done;
  List.rev !out

let diff_energy fa fb =
  (* integral of (fa - fb)^2 via the closed form *)
  let neg = List.map (fun (p, i, k) -> (p, i, Cx.neg k)) fb in
  let ms = fa @ neg in
  Float.max 0. (inner_product ms ms).Cx.re

let unit_with_residue u k =
  (* same pole structure as u but leading residue k (conjugated on the
     partner term) *)
  match u.fn with
  | [ (p, 0, _) ] -> [ (p, 0, k) ]
  | [ (p1, 0, _); (p2, 0, _) ] -> [ (p1, 0, k); (p2, 0, Cx.conj k) ]
  | _ -> u.fn

let cauchy_bound ~exact approx =
  if has_repeated exact || has_repeated approx then
    relative_error ~exact approx
  else begin
    check_stable "cauchy_bound" exact;
    check_stable "cauchy_bound" approx;
    let ue = units_of exact in
    let ua = Array.of_list (units_of approx) in
    let used = Array.make (Array.length ua) false in
    (* greedy nearest-pole pairing, dominant exact units first *)
    let ordered =
      List.sort
        (fun a b -> Cx.compare_by_magnitude a.rep_pole b.rep_pole)
        ue
    in
    let pairs = ref [] and leftovers = ref [] in
    List.iter
      (fun u ->
        let best = ref (-1) and bestd = ref Float.infinity in
        Array.iteri
          (fun i a ->
            if not used.(i) then begin
              let d = Cx.abs (a.rep_pole -: u.rep_pole) in
              if d < !bestd then begin
                bestd := d;
                best := i
              end
            end)
          ua;
        if !best >= 0 then begin
          used.(!best) <- true;
          pairs := (u, ua.(!best)) :: !pairs
        end
        else leftovers := u :: !leftovers)
      ordered;
    (* assign each surplus exact unit to its nearest approx unit *)
    let splits = Hashtbl.create 4 in
    List.iter
      (fun u ->
        let best = ref (-1) and bestd = ref Float.infinity in
        Array.iteri
          (fun i a ->
            let d = Cx.abs (a.rep_pole -: u.rep_pole) in
            if d < !bestd then begin
              bestd := d;
              best := i
            end)
          ua;
        if !best >= 0 then
          Hashtbl.replace splits !best
            (u
            :: (match Hashtbl.find_opt splits !best with
               | Some l -> l
               | None -> [])))
      !leftovers;
    let energies = ref [] in
    List.iter
      (fun (u, a) ->
        let idx = ref (-1) in
        Array.iteri (fun i a' -> if a' == a then idx := i) ua;
        match Hashtbl.find_opt splits !idx with
        | None ->
          (* ordinary pair: full difference *)
          energies := diff_energy u.fn a.fn :: !energies
        | Some surplus ->
          (* the paper's split (eqs. 42-43): the primary exact unit is
             compared against the approx pole carrying the primary's
             own residue; each surplus unit against the residue
             remainder *)
          energies :=
            diff_energy u.fn (unit_with_residue a u.residue) :: !energies;
          let remainder = ref (a.residue -: u.residue) in
          List.iter
            (fun s ->
              energies :=
                diff_energy s.fn (unit_with_residue a !remainder)
                :: !energies;
              remainder := Cx.zero)
            surplus)
      !pairs;
    (* surplus units whose nearest approx unit had no primary pair *)
    List.iter
      (fun u ->
        let covered =
          Hashtbl.fold
            (fun idx us acc ->
              acc
              || (List.memq u us
                 && List.exists (fun (_, a) -> a == ua.(idx)) !pairs))
            splits false
        in
        if not covered then begin
          let best = ref (-1) and bestd = ref Float.infinity in
          Array.iteri
            (fun i a ->
              let d = Cx.abs (a.rep_pole -: u.rep_pole) in
              if d < !bestd then begin
                bestd := d;
                best := i
              end)
            ua;
          if !best < 0 then energies := diff_energy u.fn [] :: !energies
        end)
      !leftovers;
    (* unmatched approx units count in full *)
    Array.iteri
      (fun i a -> if not used.(i) then energies := diff_energy [] a.fn :: !energies)
      ua;
    let m = List.length !energies in
    let total =
      float_of_int m *. List.fold_left ( +. ) 0. !energies
    in
    let norm = Stdlib.sqrt (l2_norm_sq exact) in
    if norm = 0. then Stdlib.sqrt total else Stdlib.sqrt total /. norm
  end
