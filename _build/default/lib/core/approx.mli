(** Reduced-order response models: the q-pole approximations AWE
    produces, and their evaluation as time-domain waveforms.

    A {!transient} is [x_h(t) = sum_c sum_i K_(c,i) t^i e^(p_c t) / i!]
    — simple poles have a single coefficient, repeated poles carry the
    confluent chain (paper, eqs. 26-29).  Complex poles always appear
    with their conjugates so evaluation is real.

    A {!component} shifts, scales, and superposes one transient plus
    its affine particular solution: the ramp-superposition rule of the
    paper (eqs. 65-66) in general form.  A {!response} is a sum of
    components. *)

type term = {
  pole : Linalg.Cx.t;
  coeffs : Linalg.Cx.t array;
      (** [coeffs.(i)] multiplies [t^i e^(pole t) / i!] *)
}

type transient = term list

val eval_transient : transient -> float -> float
(** Real part of the sum (exactly real for conjugate-closed sets). *)

val transient_poles : transient -> Linalg.Cx.t list
(** With multiplicity, sorted by ascending magnitude. *)

val transient_stable : transient -> bool
(** All poles strictly in the open left half plane. *)

val dc_gain_residues : transient -> (Linalg.Cx.t * Linalg.Cx.t) list
(** [(pole, leading residue)] pairs. *)

val zeros : transient -> Linalg.Cx.t list
(** Zeros of the reduced model's rational form
    [X(s) = sum_l k_l / (s - p_l)]: the roots of the numerator
    [N(s) = sum_l k_l prod_(m<>l) (s - p_m)].  A low-frequency zero
    close to a pole signals residue cancellation — the mechanism by
    which nonequilibrium initial conditions suppress natural
    frequencies (paper, Section 5.2).  Requires simple poles; raises
    [Invalid_argument] on repeated-pole chains.  Returns at most
    [q - 1] zeros, sorted by ascending magnitude. *)

type component = {
  t_shift : float;  (** activation time; contributes only for [t >= t_shift] *)
  scale : float;
  p_const : float;  (** particular-solution constant term *)
  p_slope : float;  (** particular-solution slope *)
  transient : transient;
}

type response = component list

val eval : response -> float -> float
(** [eval r t] sums [scale * (p_const + p_slope*(t - t_shift) +
    transient(t - t_shift))] over the active components. *)

val waveform : response -> t_stop:float -> samples:int -> Waveform.t

val steady_value : response -> float
(** The [t -> infinity] value; meaningful when the net particular slope
    cancels (any bounded input), computed as the sum of scaled
    [p_const - p_slope * t_shift] terms plus linear terms, evaluated
    symbolically.  Raises [Invalid_argument] when the slopes do not
    cancel (unbounded ramp input). *)

val crossing_time :
  ?rising:bool -> response -> threshold:float -> t_max:float -> float option
(** First threshold crossing located by sampling then bisection on the
    analytic model — the delay measurement of the paper (Section 5.3's
    logic-threshold delay). *)
