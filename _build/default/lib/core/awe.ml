(* Re-export the library's submodules so [Awe.Moments], [Awe.Approx],
   etc. are reachable from the single entry module. *)
module Moments = Moments
module Approx = Approx
module Moment_match = Moment_match
module Error_est = Error_est
module Elmore = Elmore
module Tree_link = Tree_link
module Two_pole = Two_pole
module Ac = Ac

open Linalg

type options = {
  match_slope : bool;
  scale_moments : bool;
  check_stability : bool;
  sparse : bool;
  reduce_degenerate : bool;
  expansion_shift : float;
}

let default_options =
  { match_slope = false;
    scale_moments = true;
    check_stability = true;
    sparse = false;
    reduce_degenerate = true;
    expansion_shift = 0. }

type t = {
  sys : Circuit.Mna.t;
  node : Circuit.Element.node;
  q : int;
  response : Approx.response;
  base : Approx.transient;
}

exception Degenerate of string

exception Unstable_fit of Cx.t list

(* Fit one subproblem's moment sequence at order [q], optionally
   retrying at lower orders when the moment matrix is singular (the
   subproblem has fewer than [q] active poles). *)
let fit_sequence ~opts ~q ~slope mu =
  let slope = if opts.match_slope then slope else None in
  let rec attempt q =
    if q < 1 then raise (Degenerate "no usable order for moment sequence")
    else begin
      match
        Moment_match.fit ~scale:opts.scale_moments
          ~check_stability:opts.check_stability
          ~shift:opts.expansion_shift ?slope ~q
          (Array.sub mu 0 (2 * q))
      with
      | terms -> terms
      | exception Moment_match.No_fit msg ->
        if opts.reduce_degenerate then attempt (q - 1)
        else raise (Degenerate msg)
      | exception Moment_match.Unstable ps -> raise (Unstable_fit ps)
    end
  in
  attempt q

type observable =
  | Node of Circuit.Element.node
  | Branch_current of int (* element index with a branch unknown *)

let observable_var sys = function
  | Node node ->
    let v = Circuit.Mna.node_var sys node in
    if v < 0 then
      invalid_arg "Awe.approximate: output cannot be the ground node";
    (v, node)
  | Branch_current idx -> (
    match Circuit.Mna.branch_var sys idx with
    | Some v -> (v, Circuit.Element.ground)
    | None ->
      invalid_arg
        "Awe.approximate: element carries no branch current (only V \
         sources, inductors, VCVS and CCVS do)")

let approximate_observable ?(options = default_options) sys ~observable ~q =
  if q < 1 then invalid_arg "Awe.approximate: order must be >= 1";
  let out_var, node = observable_var sys observable in
  let engine =
    Moments.make ~sparse:options.sparse ~shift:options.expansion_shift sys
  in
  let op0 = Circuit.Dc.initial sys in
  let op0p = Circuit.Dc.at_zero_plus sys op0 in
  let count = (2 * q) + 1 (* one spare for error estimation reuse *) in
  (* base component: sources at their 0+ values and slopes *)
  let base_prob = Moments.base_problem engine op0p in
  let base_mu =
    Moments.mu (Moments.vectors engine base_prob ~count) ~out_var
  in
  let base_terms =
    if Moments.is_negligible base_mu then []
    else
      fit_sequence ~opts:options ~q
        ~slope:(Moments.mu_slope base_prob ~out_var)
        (Array.sub base_mu 0 (2 * q))
  in
  let base_component =
    { Approx.t_shift = 0.;
      scale = 1.;
      p_const = base_prob.Moments.d0.(out_var);
      p_slope = base_prob.Moments.d1.(out_var);
      transient = base_terms }
  in
  (* one ramp kernel per source that has slope breaks; shifted/scaled
     copies per break *)
  let nsrc = Circuit.Mna.source_count sys in
  let break_components = ref [] in
  for col = 0 to nsrc - 1 do
    let canon =
      Circuit.Element.canonicalize (Circuit.Mna.source_waveform sys col)
    in
    match canon.Circuit.Element.breaks with
    | [] -> ()
    | breaks ->
      let kernel = Moments.ramp_kernel engine ~src_col:col in
      let kernel_mu =
        Moments.mu (Moments.vectors engine kernel ~count) ~out_var
      in
      let kernel_terms =
        if Moments.is_negligible kernel_mu then []
        else
          fit_sequence ~opts:options ~q
            ~slope:(Moments.mu_slope kernel ~out_var)
            (Array.sub kernel_mu 0 (2 * q))
      in
      List.iter
        (fun (t_k, dr) ->
          break_components :=
            { Approx.t_shift = t_k;
              scale = dr;
              p_const = kernel.Moments.d0.(out_var);
              p_slope = kernel.Moments.d1.(out_var);
              transient = kernel_terms }
            :: !break_components)
        breaks
  done;
  { sys;
    node;
    q;
    response = base_component :: List.rev !break_components;
    base = base_terms }

let approximate ?options sys ~node ~q =
  approximate_observable ?options sys ~observable:(Node node) ~q

let eval t time = Approx.eval t.response time

let waveform t ~t_stop ~samples = Approx.waveform t.response ~t_stop ~samples

let poles t = Approx.transient_poles t.base

let residues t = Approx.dc_gain_residues t.base

let steady_state t = Approx.steady_value t.response

let delay t ~threshold ~t_max =
  Approx.crossing_time t.response ~threshold ~t_max

let error_estimate ?(options = default_options) sys ~node ~q =
  let a_q = approximate ~options sys ~node ~q in
  let a_q1 = approximate ~options sys ~node ~q:(q + 1) in
  Error_est.relative_error ~exact:a_q1.base a_q.base

let auto ?(options = default_options) ?(tol = 0.02) ?(q_max = 8) sys ~node =
  let rec search q best =
    if q > q_max then
      match best with
      | Some (a, err) -> (a, err)
      | None ->
        raise (Degenerate "no stable approximation up to the maximum order")
    else begin
      match
        let a = approximate ~options sys ~node ~q in
        let a' = approximate ~options sys ~node ~q:(q + 1) in
        (a, a', Error_est.relative_error ~exact:a'.base a.base)
      with
      | a, _, err when err <= tol -> (a, err)
      | a, _, err ->
        let best =
          match best with
          | Some (_, best_err) when best_err <= err -> best
          | _ -> Some (a, err)
        in
        search (q + 1) best
      | exception (Unstable_fit _ | Degenerate _) -> search (q + 1) best
    end
  in
  search 1 None

let elmore_equivalent sys ~node = Elmore.scaled_delay sys ~node

(* ------------------------------------------------------------------ *)
module Batch = struct
  type result = { node : Circuit.Element.node; outcome : outcome }

  and outcome = Approximation of t | Failed of string

  (* Rebuild Awe.approximate's pipeline but share the moment vectors
     across all outputs. *)
  let approximate_all ?(options = default_options) sys ~nodes ~q =
    if q < 1 then invalid_arg "Batch.approximate_all: order must be >= 1";
    let out_vars =
      List.map
        (fun node ->
          let v = Circuit.Mna.node_var sys node in
          if v < 0 then
            invalid_arg "Batch.approximate_all: output cannot be ground";
          (node, v))
        nodes
    in
    let engine =
      Moments.make ~sparse:options.sparse ~shift:options.expansion_shift sys
    in
    let op0 = Circuit.Dc.initial sys in
    let op0p = Circuit.Dc.at_zero_plus sys op0 in
    let count = (2 * q) + 1 in
    let base_prob = Moments.base_problem engine op0p in
    let base_ws = Moments.vectors engine base_prob ~count in
    (* per-source ramp kernels, computed lazily once *)
    let nsrc = Circuit.Mna.source_count sys in
    let kernels = Array.make nsrc None in
    let kernel_of col =
      match kernels.(col) with
      | Some k -> k
      | None ->
        let prob = Moments.ramp_kernel engine ~src_col:col in
        let ws = Moments.vectors engine prob ~count in
        kernels.(col) <- Some (prob, ws);
        (prob, ws)
    in
    let breaks_of col =
      (Circuit.Element.canonicalize (Circuit.Mna.source_waveform sys col))
        .Circuit.Element.breaks
    in
    List.map
      (fun (node, out_var) ->
        match
          let fit_of prob ws =
            let mu = Moments.mu ws ~out_var in
            if Moments.is_negligible mu then []
            else begin
              let slope =
                if options.match_slope then
                  Moments.mu_slope prob ~out_var
                else None
              in
              let rec attempt q' =
                if q' < 1 then
                  raise (Degenerate "no usable order for moment sequence")
                else begin
                  match
                    Moment_match.fit ~scale:options.scale_moments
                      ~check_stability:options.check_stability ?slope ~q:q'
                      (Array.sub mu 0 (2 * q'))
                  with
                  | terms -> terms
                  | exception Moment_match.No_fit msg ->
                    if options.reduce_degenerate then attempt (q' - 1)
                    else raise (Degenerate msg)
                  | exception Moment_match.Unstable ps ->
                    raise (Unstable_fit ps)
                end
              in
              attempt q
            end
          in
          let base_terms = fit_of base_prob base_ws in
          let base_component =
            { Approx.t_shift = 0.;
              scale = 1.;
              p_const = base_prob.Moments.d0.(out_var);
              p_slope = base_prob.Moments.d1.(out_var);
              transient = base_terms }
          in
          let break_components = ref [] in
          for col = 0 to nsrc - 1 do
            match breaks_of col with
            | [] -> ()
            | breaks ->
              let kprob, kws = kernel_of col in
              let kterms = fit_of kprob kws in
              List.iter
                (fun (t_k, dr) ->
                  break_components :=
                    { Approx.t_shift = t_k;
                      scale = dr;
                      p_const = kprob.Moments.d0.(out_var);
                      p_slope = kprob.Moments.d1.(out_var);
                      transient = kterms }
                    :: !break_components)
                breaks
          done;
          { sys;
            node;
            q;
            response = base_component :: List.rev !break_components;
            base = base_terms }
        with
        | a -> { node; outcome = Approximation a }
        | exception Degenerate msg -> { node; outcome = Failed msg }
        | exception Unstable_fit _ ->
          { node; outcome = Failed "unstable fit" })
      out_vars

  let delays_all ?options sys ~nodes ~q ~threshold ~t_max =
    approximate_all ?options sys ~nodes ~q
    |> List.map (fun r ->
           match r.outcome with
           | Approximation a -> (r.node, delay a ~threshold ~t_max)
           | Failed _ -> (
             (* a node whose fixed-order fit is degenerate or unstable
                gets individual order escalation (paper, Section 3.3) *)
             match auto ?options sys ~node:r.node with
             | a, _ -> (r.node, delay a ~threshold ~t_max)
             | exception (Degenerate _ | Unstable_fit _) -> (r.node, None)))

  let elmore_all sys =
    let engine = Moments.make sys in
    let op0 = Circuit.Dc.initial sys in
    let op0p = Circuit.Dc.at_zero_plus sys op0 in
    let prob = Moments.base_problem engine op0p in
    let ws = Moments.vectors engine prob ~count:2 in
    let ckt = Circuit.Mna.circuit sys in
    List.init (ckt.Circuit.Netlist.node_count - 1) (fun i ->
        let node = i + 1 in
        let v = Circuit.Mna.node_var sys node in
        let mu0 = ws.(0).(v) and mu1 = ws.(1).(v) in
        let td = if Float.abs mu0 < 1e-300 then 0. else -.(mu1 /. mu0) in
        (node, td))

end
