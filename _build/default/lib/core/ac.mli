(** Exact frequency-domain analysis and reduced-model transfer
    functions.

    AWE matches the Maclaurin expansion of the response about [s = 0]
    (paper, eq. 10), so its reduced model is also a rational
    approximation of the transfer function.  This module computes the
    {e exact} frequency response by complex MNA solves of
    [(G + s C) X = B] and evaluates the reduced model's rational form —
    the frequency-domain view used to verify that approximate poles
    "creep up on" the actual poles. *)

val exact_response :
  Circuit.Mna.t ->
  src_col:int ->
  node:Circuit.Element.node ->
  omegas:float array ->
  Linalg.Cx.t array
(** [exact_response sys ~src_col ~node ~omegas] is the transfer
    function [H(j w)] from source column [src_col] to the node voltage,
    evaluated at each angular frequency (one complex LU solve each).
    Raises [Cmatrix.Singular] at a frequency exactly on an undamped
    pole. *)

val model_response :
  dc_gain:float -> Approx.transient -> omegas:float array -> Linalg.Cx.t array
(** Transfer function of a reduced step-response model: the Laplace
    transform of [dc_gain + sum_l k_l e^(p_l t)] multiplied by [s] (the
    step input carries the [1/s]):
    [H(s) = dc_gain + sum_l k_l s / (s - p_l)], with the corresponding
    [s / (s - p)^(i+1)] terms for repeated-pole chains. *)

val magnitude_db : Linalg.Cx.t array -> float array

val log_sweep : f_start:float -> f_stop:float -> points:int -> float array
(** Logarithmically spaced angular frequencies (input in Hz). *)
