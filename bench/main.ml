(* Reproduction harness: one experiment per table and figure of the
   paper's evaluation (Sections IV-V), plus the scaling and ablation
   studies called out in DESIGN.md.

     dune exec bench/main.exe            runs everything
     dune exec bench/main.exe -- fig23   runs one experiment

   Absolute element values differ from the (unpublished) originals; the
   quantities compared are the paper's *claims*: who wins, error
   orderings, pole patterns, delay shifts.  See EXPERIMENTS.md. *)

open Circuit
open Util

let step5 = Element.Step { v0 = 0.; v1 = 5. }

(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Fig. 7 — first-order AWE vs exact, Fig. 4 RC tree, 5 V step";
  let f = Samples.fig4 () in
  let sys = Mna.build f.Samples.circuit in
  let a1 = Awe.approximate sys ~node:f.Samples.n4 ~q:1 in
  (match Awe.poles a1 with
  | [ p ] ->
    claim ~paper:"pole = -1/T_D (Elmore)" "%.2f vs -1/7e-4 = -1428.57"
      p.Linalg.Cx.re
  | _ -> ());
  let wex = simulate sys f.Samples.n4 ~t_stop:5e-3 ~steps:4000 in
  let w1 = Awe.waveform a1 ~t_stop:5e-3 ~samples:4001 in
  claim ~paper:"visible single-exponential error"
    "transient L2 error %.1f%%"
    (100. *. transient_error wex w1);
  claim ~paper:"error term 36% at first order" "error estimate %.1f%%"
    (100. *. Awe.error_estimate sys ~node:f.Samples.n4 ~q:1);
  plot ~label:"fig7: AWE q1 (*) vs simulation (+)" [ w1; wex ]

let fig12 () =
  section "Fig. 12 — grounded resistor (Fig. 9), first-order AWE";
  let f = Samples.fig9 () in
  let sys = Mna.build f.Samples.circuit in
  let a1 = Awe.approximate sys ~node:f.Samples.n4 ~q:1 in
  claim ~paper:"steady state scaled by the divider"
    "v(inf) = %.4f V (divider: 5*4/7 = 2.8571)"
    (Awe.steady_state a1);
  claim ~paper:"first moment reflects both G^-1 and v_ss changes"
    "scaled Elmore %.4g s (plain tree T_D was 7e-4)"
    (Awe.Elmore.scaled_delay sys ~node:f.Samples.n4);
  let wex = simulate sys f.Samples.n4 ~t_stop:4e-3 ~steps:4000 in
  let w1 = Awe.waveform a1 ~t_stop:4e-3 ~samples:4001 in
  claim ~paper:"good first-order prediction"
    "transient L2 error %.1f%%"
    (100. *. transient_error wex w1);
  plot ~label:"fig12: AWE q1 (*) vs simulation (+)" [ w1; wex ]

let fig14 () =
  section "Fig. 14 — Fig. 4 tree driven by a 5 V, 1 ms-rise ramp";
  let wave = Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 1e-3 } in
  let f = Samples.fig4 ~wave () in
  let sys = Mna.build f.Samples.circuit in
  let a1 = Awe.approximate sys ~node:f.Samples.n4 ~q:1 in
  (* the paper's eqs. 63-64: v_p = 5e3 t - r*tau, v_h = 3.5 e^(-t/tau) *)
  (match a1.Awe.response with
  | base :: ramp_neg :: _ ->
    claim ~paper:"v_h residue r*tau = 3.5 V (eq. 64)"
      "|residue| = %.4f V"
      (match base.Awe.Approx.transient with
      | [ t ] -> Float.abs t.Awe.Approx.coeffs.(0).Linalg.Cx.re
      | _ -> nan);
    claim ~paper:"negative ramp activates at 1 ms (eq. 66)"
      "t_shift = %.4g s, scale %.3g"
      ramp_neg.Awe.Approx.t_shift ramp_neg.Awe.Approx.scale
  | _ -> ());
  let wex = simulate sys f.Samples.n4 ~t_stop:6e-3 ~steps:6000 in
  let w1 = Awe.waveform a1 ~t_stop:6e-3 ~samples:6001 in
  claim ~paper:"good delay prediction; largest error near t = 0"
    "transient L2 error %.1f%%"
    (100. *. transient_error wex w1);
  let dt = 1e-6 in
  let slope0 = (Awe.eval a1 dt -. Awe.eval a1 0.) /. dt in
  claim ~paper:"approximation starts with a (wrong) negative slope"
    "initial slope %.1f V/s" slope0;
  let a1m =
    Awe.approximate
      ~options:{ Awe.default_options with match_slope = true }
      sys ~node:f.Samples.n4 ~q:1
  in
  let slope0m = (Awe.eval a1m dt -. Awe.eval a1m 0.) /. dt in
  claim ~paper:"matching m_(-2) removes the glitch (Section 4.3)"
    "initial slope with slope matching %.2f V/s" slope0m;
  plot ~label:"fig14: AWE q1 ramp response (*) vs simulation (+)" [ w1; wex ]

let fig15 () =
  section "Fig. 15 — second-order step response, Fig. 4 tree";
  let f = Samples.fig4 () in
  let sys = Mna.build f.Samples.circuit in
  let wex = simulate sys f.Samples.n4 ~t_stop:5e-3 ~steps:4000 in
  let err q =
    let a = Awe.approximate sys ~node:f.Samples.n4 ~q in
    ( transient_error wex (Awe.waveform a ~t_stop:5e-3 ~samples:4001),
      Awe.error_estimate sys ~node:f.Samples.n4 ~q )
  in
  let t1, e1 = err 1 in
  let t2, e2 = err 2 in
  claim ~paper:"error term falls 36% -> 1.6%"
    "estimate %.1f%% -> %.2f%% (vs sim: %.1f%% -> %.2f%%)"
    (100. *. e1) (100. *. e2) (100. *. t1) (100. *. t2);
  let a2 = Awe.approximate sys ~node:f.Samples.n4 ~q:2 in
  claim ~paper:"AWE and SPICE indistinguishable at plot resolution"
    "max abs difference %.4f V"
    (Waveform.max_abs_error wex (Awe.waveform a2 ~t_stop:5e-3 ~samples:4001));
  plot ~label:"fig15: AWE q2 (*) vs simulation (+)"
    [ Awe.waveform a2 ~t_stop:5e-3 ~samples:4001; wex ]

let table1 () =
  section "Table I — approximating vs actual poles, Fig. 16 tree";
  let poles_for ~v_c6 q =
    let f = Samples.fig16 ~v_c6 ~wave:step5 () in
    let sys = Mna.build f.Samples.circuit in
    match Awe.approximate sys ~node:f.Samples.output ~q with
    | a -> Awe.poles a
    | exception (Awe.Unstable_fit _ | Awe.Degenerate _) -> []
  in
  let f = Samples.fig16 ~wave:step5 () in
  let sys = Mna.build f.Samples.circuit in
  let actual = actual_poles sys in
  print_pole_table ~title:"  (output at C7; 5 V step; rad/s)"
    [ ("1st order", poles_for ~v_c6:0. 1);
      ("2nd order", poles_for ~v_c6:0. 2);
      ("1st (vC6=5)", poles_for ~v_c6:5. 1);
      ("2nd (vC6=5)", poles_for ~v_c6:5. 2);
      ("actual", actual) ];
  note "paper: approximate poles 'creep up on' the actual poles as the";
  note "order increases, and the initial condition shifts the fit.";
  (* the zero mechanism of Section 5.2: the model's transfer zero
     reweights the natural frequencies; the IC moves it *)
  let zero_for ~v_c6 =
    let f = Samples.fig16 ~v_c6 ~wave:step5 () in
    let sys = Mna.build f.Samples.circuit in
    match
      Awe.Approx.zeros (Awe.approximate sys ~node:f.Samples.output ~q:2).Awe.base
    with
    | [ z ] -> z
    | _ -> Linalg.Cx.re nan
  in
  claim
    ~paper:"the IC introduces a zero that reweights the poles (S 5.2)"
    "order-2 model zero: %.4e (no IC) vs %.4e (vC6 = 5)"
    (zero_for ~v_c6:0.).Linalg.Cx.re
    (zero_for ~v_c6:5.).Linalg.Cx.re;
  let spread =
    match (actual, List.rev actual) with
    | p1 :: _, pn :: _ -> Linalg.Cx.abs pn /. Linalg.Cx.abs p1
    | _ -> nan
  in
  claim ~paper:"time constants spread over ~4 decades"
    "|p_max|/|p_min| = %.2e" spread

let fig17_18 () =
  section "Figs. 17-18 — Fig. 16 tree, 1 ns ramp: order 1 then order 2";
  let f = Samples.fig16 () in
  let sys = Mna.build f.Samples.circuit in
  let wex = simulate sys f.Samples.output ~t_stop:6e-9 ~steps:6000 in
  let run q =
    let a = Awe.approximate sys ~node:f.Samples.output ~q in
    ( a,
      transient_error wex (Awe.waveform a ~t_stop:6e-9 ~samples:6001),
      Awe.error_estimate sys ~node:f.Samples.output ~q )
  in
  let a1, t1, e1 = run 1 in
  let a2, t2, e2 = run 2 in
  claim ~paper:"first-order error term 4.4%"
    "estimate %.2f%% (vs sim %.2f%%)" (100. *. e1) (100. *. t1);
  claim ~paper:"second-order error term 0.15%"
    "estimate %.3f%% (vs sim %.3f%%)" (100. *. e2) (100. *. t2);
  claim ~paper:"stiff fast poles are never computed unless needed"
    "q1 used 1 pole of a %d-state circuit" (Mna.size sys - 2);
  plot ~label:"fig17: AWE q1 (*) vs simulation (+)"
    [ Awe.waveform a1 ~t_stop:6e-9 ~samples:6001; wex ];
  plot ~label:"fig18: AWE q2 (*) vs simulation (+)"
    [ Awe.waveform a2 ~t_stop:6e-9 ~samples:6001; wex ]

let fig19 () =
  section "Fig. 19 — CPU time: first order vs incremental second order";
  let f = Samples.fig16 () in
  let sys = Mna.build f.Samples.circuit in
  let node = f.Samples.output in
  let out_var = Mna.node_var sys node in
  let op0 = Dc.initial sys in
  let op0p = Dc.at_zero_plus sys op0 in
  let engine = Awe.Moments.make sys in
  let prob = Awe.Moments.base_problem engine op0p in
  let results =
    measure_ns
      [ ( "first-order total",
          fun () ->
            let e = Awe.Moments.make sys in
            let p = Awe.Moments.base_problem e op0p in
            let mu =
              Awe.Moments.mu (Awe.Moments.vectors e p ~count:2) ~out_var
            in
            ignore (Awe.Moment_match.fit ~q:1 mu) );
        ( "second-order total",
          fun () ->
            let e = Awe.Moments.make sys in
            let p = Awe.Moments.base_problem e op0p in
            let mu =
              Awe.Moments.mu (Awe.Moments.vectors e p ~count:4) ~out_var
            in
            ignore (Awe.Moment_match.fit ~q:2 mu) );
        ( "incremental moments only",
          fun () ->
            (* the marginal work: two more A^-1 applications *)
            let w2 = Awe.Moments.advance engine prob.Awe.Moments.x_h0 in
            let w3 = Awe.Moments.advance engine w2 in
            ignore w3 ) ]
  in
  let find k = List.assoc k results in
  let t1 = find "first-order total" in
  let t2 = find "second-order total" in
  let tm = find "incremental moments only" in
  note "first-order approximation:  %8.0f ns/run" t1;
  note "second-order approximation: %8.0f ns/run" t2;
  note "incremental moment cost:    %8.0f ns/run" tm;
  claim ~paper:"second order costs a small increment over first"
    "increment = %.0f%% of the first-order cost"
    (100. *. (t2 -. t1) /. t1)

let fig20_21 () =
  section "Figs. 20-21 — nonmonotone charge-sharing response (vC6 = 5 V)";
  let f = Samples.fig16 ~v_c6:5.0 ~wave:(Element.Dc 0.) () in
  let sys = Mna.build f.Samples.circuit in
  let wex = simulate sys f.Samples.output ~t_stop:5e-9 ~steps:5000 in
  claim ~paper:"response is nonmonotone" "monotone = %b"
    (Waveform.is_monotone wex);
  (match Awe.approximate sys ~node:f.Samples.output ~q:1 with
  | a1 ->
    let w1 = Awe.waveform a1 ~t_stop:5e-9 ~samples:5001 in
    claim ~paper:"first-order error 150% (useless)"
      "transient error %.0f%%"
      (100. *. transient_error wex w1)
  | exception Awe.Degenerate _ ->
    claim ~paper:"first-order error 150% (useless)"
      "no first-order fit exists at all (%s)"
      "initial value 0, area nonzero");
  let a2 = Awe.approximate sys ~node:f.Samples.output ~q:2 in
  let w2 = Awe.waveform a2 ~t_stop:5e-9 ~samples:5001 in
  claim ~paper:"second-order error 0.65%, indistinguishable"
    "transient error %.2f%%, max abs error %.4f V"
    (100. *. transient_error wex w2)
    (Waveform.max_abs_error wex w2);
  plot ~label:"fig21: charge-sharing glitch, AWE q2 (*) vs simulation (+)"
    [ w2; wex ]

let fig23 () =
  section "Fig. 23 — floating coupling capacitors (Fig. 22), output at C7";
  let base = Samples.fig16 () in
  let cpl, _ = Samples.fig22 () in
  let sys_b = Mna.build base.Samples.circuit in
  let sys_c = Mna.build cpl.Samples.circuit in
  let wex = simulate sys_c cpl.Samples.output ~t_stop:6e-9 ~steps:6000 in
  let err q =
    let a = Awe.approximate sys_c ~node:cpl.Samples.output ~q in
    transient_error wex (Awe.waveform a ~t_stop:6e-9 ~samples:6001)
  in
  let delay sys node =
    let a = Awe.approximate sys ~node ~q:3 in
    Option.value ~default:nan (Awe.delay a ~threshold:4.0 ~t_max:10e-9)
  in
  claim ~paper:"delay moves 1.6 -> 1.7 ns at the 4.0 V threshold"
    "%.2f ns -> %.2f ns"
    (1e9 *. delay sys_b base.Samples.output)
    (1e9 *. delay sys_c cpl.Samples.output);
  let est_base =
    Awe.error_estimate sys_b ~node:base.Samples.output ~q:2
  in
  let est_cpl = Awe.error_estimate sys_c ~node:cpl.Samples.output ~q:2 in
  claim
    ~paper:"order-2 error term grows with the coupling path (0.15% -> 15%)"
    "order-2 estimate %.3f%% -> %.3f%% (sim error %.3f%%); the 100x jump \
     depends on the unpublished element values — see EXPERIMENTS.md"
    (100. *. est_base) (100. *. est_cpl)
    (100. *. err 2);
  claim ~paper:"a higher order restores accuracy (15% -> 0.14% at order 3)"
    "order-3 error %.4f%%" (100. *. err 3);
  let a3 = Awe.approximate sys_c ~node:cpl.Samples.output ~q:3 in
  plot ~label:"fig23: aggressor, AWE q3 (*) vs simulation (+)"
    [ Awe.waveform a3 ~t_stop:6e-9 ~samples:6001; wex ]

let fig24 () =
  section "Fig. 24 — charge dumped onto the victim through C11";
  let cpl, victim = Samples.fig22 () in
  let sys = Mna.build cpl.Samples.circuit in
  let wex = simulate sys victim ~t_stop:10e-9 ~steps:8000 in
  let a = Awe.approximate sys ~node:victim ~q:3 in
  let wap = Awe.waveform a ~t_stop:10e-9 ~samples:8001 in
  claim ~paper:"victim settles at the capacitive divider value"
    "%.4f V (exact: 1.25 V)" (Awe.steady_state a);
  (* m_0 matching makes the area under the transient exact: compare
     integral of (v_inf - v) between simulation and AWE *)
  let area w =
    let vf = Waveform.final_value w in
    let acc = ref 0. in
    Array.iteri
      (fun i t ->
        if i > 0 then begin
          let dt = t -. w.Waveform.times.(i - 1) in
          acc :=
            !acc
            +. (0.5 *. dt
               *. ((vf -. w.Waveform.values.(i))
                  +. (vf -. w.Waveform.values.(i - 1))))
        end)
      w.Waveform.times;
    !acc
  in
  claim ~paper:"transferred charge (area) is always exact"
    "area sim %.4e V.s vs AWE %.4e V.s (diff %.2f%%)" (area wex)
    (area wap)
    (100. *. Float.abs (area wex -. area wap) /. Float.abs (area wex));
  plot ~label:"fig24: victim charge-up, AWE q3 (*) vs simulation (+)"
    [ wap; wex ]

let table2_fig26 () =
  section "Table II + Fig. 26 — underdamped RLC (Fig. 25), 5 V step";
  let f = Samples.fig25 () in
  let sys = Mna.build f.Samples.circuit in
  let poles_at q =
    match Awe.approximate sys ~node:f.Samples.out ~q with
    | a -> Awe.poles a
    | exception _ -> []
  in
  print_pole_table ~title:"  (output at C3; rad/s)"
    [ ("2nd order", poles_at 2);
      ("4th order", poles_at 4);
      ("actual", actual_poles sys) ];
  let wex = simulate sys f.Samples.out ~t_stop:10e-9 ~steps:10000 in
  let err q =
    let a = Awe.approximate sys ~node:f.Samples.out ~q in
    transient_error wex (Awe.waveform a ~t_stop:10e-9 ~samples:10001)
  in
  (match Awe.poles (Awe.approximate sys ~node:f.Samples.out ~q:1) with
  | [ p ] ->
    claim ~paper:"first order: one real pole (-2.833e9), error 74%"
      "real pole %.3e, error %.0f%%" p.Linalg.Cx.re
      (100. *. err 1)
  | _ -> ());
  claim ~paper:"second order detects the overshoot, error 22%"
    "error %.0f%%, overshoot %.2f V (sim %.2f V)"
    (100. *. err 2)
    (Waveform.overshoot
       (Awe.waveform
          (Awe.approximate sys ~node:f.Samples.out ~q:2)
          ~t_stop:10e-9 ~samples:10001))
    (Waveform.overshoot wex);
  claim ~paper:"fourth order: error < 1%, all detail matched"
    "error %.1f%%" (100. *. err 4);
  let a4 = Awe.approximate sys ~node:f.Samples.out ~q:4 in
  plot ~label:"fig26: AWE q4 (*) vs simulation (+)"
    [ Awe.waveform a4 ~t_stop:10e-9 ~samples:10001; wex ]

let fig27 () =
  section "Fig. 27 — Fig. 25 with a 1 ns input rise time, second order";
  let wave = Element.Ramp { v0 = 0.; v1 = 5.; t_delay = 0.; t_rise = 1e-9 } in
  let f = Samples.fig25 ~wave () in
  let sys = Mna.build f.Samples.circuit in
  let wex = simulate sys f.Samples.out ~t_stop:10e-9 ~steps:10000 in
  let a2 = Awe.approximate sys ~node:f.Samples.out ~q:2 in
  let w2 = Awe.waveform a2 ~t_stop:10e-9 ~samples:10001 in
  claim ~paper:"rise time damps the higher pair; one pair dominates"
    "q2 transient error %.1f%% (the step input needed q4)"
    (100. *. transient_error wex w2);
  let fstep = Samples.fig25 () in
  let sys_s = Mna.build fstep.Samples.circuit in
  let wex_s = simulate sys_s fstep.Samples.out ~t_stop:10e-9 ~steps:10000 in
  claim ~paper:"step response has the larger error term"
    "overshoot: step %.2f V vs ramp %.2f V"
    (Waveform.overshoot wex_s) (Waveform.overshoot wex);
  plot ~label:"fig27: AWE q2 with ramp input (*) vs simulation (+)"
    [ w2; wex ]

let eq56 () =
  section "Section IV / eq. 56 — tree-link moments are the Elmore delays";
  let f = Samples.fig4 () in
  let tl = Awe.Tree_link.prepare f.Samples.circuit in
  let w1 = Awe.Tree_link.moment_vector tl ~k:1 in
  let tds = Awe.Elmore.delays f.Samples.circuit in
  note "node   w1 (tree-link)   5 * T_D (tree walk)";
  List.iter
    (fun (name, node) ->
      note "%-5s  %.6e    %.6e" name w1.(node) (5. *. tds.(node)))
    [ ("n1", f.Samples.n1); ("n2", f.Samples.n2); ("n3", f.Samples.n3);
      ("n4", f.Samples.n4) ];
  (* grounded-resistor case: tree-link equals the general engine *)
  let f9 = Samples.fig9 () in
  let sys9 = Mna.build f9.Samples.circuit in
  let tl9 = Awe.Tree_link.prepare f9.Samples.circuit in
  let mu_tl = Awe.Tree_link.moments tl9 ~node:f9.Samples.n4 ~count:4 in
  let e = Awe.Moments.make sys9 in
  let op0 = Dc.initial sys9 in
  let op0p = Dc.at_zero_plus sys9 op0 in
  let prob = Awe.Moments.base_problem e op0p in
  let mu_en =
    Awe.Moments.mu
      (Awe.Moments.vectors e prob ~count:4)
      ~out_var:(Mna.node_var sys9 f9.Samples.n4)
  in
  let max_rel = ref 0. in
  Array.iteri
    (fun i v ->
      max_rel := Float.max !max_rel (Float.abs ((v -. mu_en.(i)) /. mu_en.(i))))
    mu_tl;
  claim ~paper:"grounded resistor handled as a link, still O(n)"
    "tree-link vs LU moments agree to %.1e relative" !max_rel

let scaling () =
  section "Scaling (Section 3.2) — moment computation cost vs circuit size";
  note "random RC trees; kernel = factor the DC matrix + 2q solves; q = 3";
  note "%6s %14s %14s %14s %8s" "n" "dense(ns)" "sparse(ns)" "treelink(ns)"
    "fill";
  List.iter
    (fun n ->
      let ckt, leaf = Samples.random_rc_tree ~seed:7 ~n () in
      let sys = Mna.build ckt in
      (* the homogeneous initial vector is computed once; the timed
         kernel is the per-analysis work the paper discusses in
         Section 3.2: one factorization plus repeated substitutions *)
      let e0 = Awe.Moments.make sys in
      let op0 = Dc.initial sys in
      let op0p = Dc.at_zero_plus sys op0 in
      let prob = Awe.Moments.base_problem e0 op0p in
      let moments_with ~sparse () =
        let e = Awe.Moments.make ~sparse sys in
        ignore (Awe.Moments.vectors e prob ~count:6)
      in
      let tl = Awe.Tree_link.prepare ckt in
      let tree_link () =
        ignore (Awe.Tree_link.moments tl ~node:leaf ~count:6)
      in
      let results =
        measure_ns
          [ ("dense", moments_with ~sparse:false);
            ("sparse", moments_with ~sparse:true);
            ("treelink", tree_link) ]
      in
      let ga = Sparse.Csr.of_dense (Mna.g sys) in
      let fill =
        match Sparse.Slu.factor ga with
        | fa -> Sparse.Slu.nnz_factors fa
        | exception Sparse.Slu.Singular _ -> -1
      in
      note "%6d %14.0f %14.0f %14.0f %8d" n
        (List.assoc "dense" results)
        (List.assoc "sparse" results)
        (List.assoc "treelink" results)
        fill)
    [ 10; 25; 50; 100; 200; 400 ];
  note "claim: runtime is dominated by moment computation and stays";
  note "near-linear with the sparse and tree-link solvers."

let ablation () =
  section "Ablation 1 — frequency scaling (Section 3.5)";
  let f = Samples.fig16 ~wave:step5 () in
  let sys = Mna.build f.Samples.circuit in
  let out_var = Mna.node_var sys f.Samples.output in
  let e = Awe.Moments.make sys in
  let op0 = Dc.initial sys in
  let op0p = Dc.at_zero_plus sys op0 in
  let prob = Awe.Moments.base_problem e op0p in
  let mu = Awe.Moments.mu (Awe.Moments.vectors e prob ~count:12) ~out_var in
  note "%3s %16s %16s" "q" "rcond(scaled)" "rcond(raw)";
  List.iter
    (fun q ->
      note "%3d %16.2e %16.2e" q
        (Awe.Moment_match.condition_number ~scale:true ~q
           (Array.sub mu 0 (2 * q)))
        (Awe.Moment_match.condition_number ~scale:false ~q
           (Array.sub mu 0 (2 * q))))
    [ 1; 2; 3; 4 ];
  let max_order scale =
    let rec go q =
      if q > 6 then 6
      else begin
        match
          Awe.Moment_match.fit ~scale ~check_stability:false ~q
            (Array.sub mu 0 (2 * q))
        with
        | _ -> go (q + 1)
        | exception _ -> q - 1
      end
    in
    go 1
  in
  claim ~paper:"higher orders unreachable without scaling"
    "max solvable order: scaled %d vs raw %d" (max_order true)
    (max_order false);

  section "Ablation 2 — error estimator: exact L2 vs the Cauchy bound";
  let f25 = Samples.fig25 () in
  let sys25 = Mna.build f25.Samples.circuit in
  List.iter
    (fun q ->
      match
        ( Awe.approximate sys25 ~node:f25.Samples.out ~q,
          Awe.approximate sys25 ~node:f25.Samples.out ~q:(q + 1) )
      with
      | aq, aq1 ->
        let exact =
          Awe.Error_est.relative_error ~exact:aq1.Awe.base aq.Awe.base
        in
        let bound =
          Awe.Error_est.cauchy_bound ~exact:aq1.Awe.base aq.Awe.base
        in
        note "q=%d: exact %.3f, paper's Cauchy bound %.3f (ratio %.2f)" q
          exact bound (bound /. exact)
      | exception _ -> note "q=%d: fit unavailable" q)
    [ 1; 2; 3 ];

  section "Ablation 3 — order-escalation policy (Section 3.3)";
  let glitch = Samples.fig16 ~v_c6:5.0 ~wave:(Element.Dc 0.) () in
  let sys_g = Mna.build glitch.Samples.circuit in
  List.iter
    (fun q ->
      match Awe.approximate sys_g ~node:glitch.Samples.output ~q with
      | a ->
        note "q=%d on the nonmonotone node: ok (%d poles)" q
          (List.length (Awe.poles a))
      | exception Awe.Unstable_fit _ ->
        note "q=%d on the nonmonotone node: unstable -> escalate" q
      | exception Awe.Degenerate _ ->
        note "q=%d on the nonmonotone node: degenerate -> escalate" q)
    [ 1; 2; 3; 4 ];
  let _, err = Awe.auto sys_g ~node:glitch.Samples.output in
  claim ~paper:"escalation reaches an acceptable order"
    "auto converged with error estimate %.2f%%" (100. *. err);

  section "Ablation 4 — residues: confluent vs plain Vandermonde";
  (* two identical RC sections isolated by a unity-gain buffer: the
     transfer to the output has an exactly repeated pole at -1/RC,
     whose response is (1 - (1 + t/RC) e^(-t/RC)) — not representable
     by distinct-pole residues *)
  let b = Netlist.create () in
  Netlist.add_v b "v1" "in" "0" (Element.Step { v0 = 0.; v1 = 1. });
  Netlist.add_r b "r1" "in" "x" 1e3;
  Netlist.add_c b "c1" "x" "0" 1e-6;
  Netlist.add_vcvs b "e1" "y" "0" "x" "0" 1.;
  Netlist.add_r b "r2" "y" "out" 1e3;
  Netlist.add_c b "c2" "out" "0" 1e-6;
  let out = Netlist.node b "out" in
  let sys_d = Mna.build (Netlist.freeze b) in
  (match Awe.approximate sys_d ~node:out ~q:2 with
  | a ->
    let repeated =
      List.exists
        (fun t -> Array.length t.Awe.Approx.coeffs > 1)
        a.Awe.base
    in
    note "order-2 fit on the double-pole cascade: %s"
      (if repeated then "confluent residue path taken"
       else "poles separated numerically");
    (* either way the waveform must match (1 - (1 + t/tau)e^(-t/tau)) *)
    let tau = 1e-3 in
    let exact t = 1. -. ((1. +. (t /. tau)) *. exp (-.t /. tau)) in
    let max_err = ref 0. in
    List.iter
      (fun t -> max_err := Float.max !max_err (Float.abs (Awe.eval a t -. exact t)))
      [ 0.5e-3; 1e-3; 2e-3; 5e-3 ];
    claim ~paper:"repeated poles need the confluent residue system (eq. 29)"
      "double-pole waveform reproduced to %.2e max error" !max_err
  | exception Awe.Degenerate msg -> note "degenerate: %s" msg)

let shifted () =
  section
    "Ablation 5 — expansion point: Maclaurin (paper) vs a shifted \
     expansion (CFH direction)";
  let f = Samples.fig25 () in
  let sys = Mna.build f.Samples.circuit in
  let wex = simulate sys f.Samples.out ~t_stop:10e-9 ~steps:10000 in
  let actual = actual_poles sys in
  let sigma2_actual =
    (* damping of the second complex pair *)
    match List.filteri (fun i _ -> i = 2) actual with
    | [ p ] -> p.Linalg.Cx.re
    | _ -> nan
  in
  note "actual second-pair damping: %.4e" sigma2_actual;
  note "%12s %12s %16s" "shift" "q4 err" "2nd-pair sigma";
  List.iter
    (fun s0 ->
      match
        let opts = { Awe.default_options with Awe.expansion_shift = s0 } in
        Awe.approximate ~options:opts sys ~node:f.Samples.out ~q:4
      with
      | a ->
        let err =
          transient_error wex (Awe.waveform a ~t_stop:10e-9 ~samples:10001)
        in
        let sigma2 =
          match List.filteri (fun i _ -> i = 2) (Awe.poles a) with
          | [ p ] -> p.Linalg.Cx.re
          | _ -> nan
        in
        note "%12.2e %11.2f%% %16.4e" s0 (100. *. err) sigma2
      | exception _ -> note "%12.2e %12s" s0 "failed")
    [ 0.; -1e9; -3e9 ];
  note "the s = 0 expansion minimizes the time-domain (integral) error;";
  note "a shift near the band sharpens the second pair's damping estimate."

let sta_bench () =
  section "Application — STA: Elmore vs AWE net delays on a gate chain";
  let inv =
    Sta.cell ~name:"inv" ~drive_res:500. ~input_cap:20e-15 ~intrinsic:50e-12
  in
  let seg from_ to_ r c =
    { Sta.seg_from = from_; seg_to = to_; res = r; cap = c }
  in
  let d = Sta.create ~vdd:5. ~threshold:0.5 () in
  Sta.add_gate d ~inst:"u1" ~cell:inv ~inputs:[ "a" ] ~output:"y";
  Sta.add_gate d ~inst:"u2" ~cell:inv ~inputs:[ "y" ] ~output:"z";
  Sta.add_net d ~name:"a" ~segments:[ seg "drv" "u1" 100. 30e-15 ];
  Sta.add_net d ~name:"y"
    ~segments:[ seg "drv" "w" 300. 80e-15; seg "w" "u2" 200. 50e-15 ];
  Sta.add_net d ~name:"z" ~segments:[ seg "drv" "o" 10. 2e-15 ];
  Sta.add_primary_input d ~net:"a" ();
  let r_aw = Sta.analyze ~model:Sta.Awe_auto d in
  let r_el = Sta.analyze ~model:Sta.Elmore_model d in
  claim ~paper:"RC-tree timing within 10% of SPICE at 1000x the speed"
    "critical arrival AWE %.4g ns, Elmore %.4g ns"
    (r_aw.Sta.critical_arrival *. 1e9)
    (r_el.Sta.critical_arrival *. 1e9)

let sta_batch () =
  section "Application — STA batch kernel: shared factorization vs per-sink";
  let inv =
    Sta.cell ~name:"inv" ~drive_res:500. ~input_cap:20e-15 ~intrinsic:50e-12
  in
  let seg from_ to_ r c =
    { Sta.seg_from = from_; seg_to = to_; res = r; cap = c }
  in
  (* a clock-tree-like stage: one driver net fanning out to four
     receivers, then a second fanout level — multi-sink nets are where
     sharing the factorization pays *)
  let d = Sta.create ~vdd:5. ~threshold:0.5 () in
  Sta.add_gate d ~inst:"u0" ~cell:inv ~inputs:[ "clk" ] ~output:"t0";
  let leaves =
    List.init 8 (fun i -> Printf.sprintf "l%d" (i + 1))
  in
  let t0_segs =
    seg "drv" "h" 120. 40e-15
    :: List.concat_map
         (fun l ->
           [ seg "h" (l ^ "w1") 250. 60e-15;
             seg (l ^ "w1") (l ^ "w2") 250. 60e-15;
             seg (l ^ "w2") (l ^ "w3") 200. 50e-15;
             seg (l ^ "w3") ("u" ^ l) 180. 45e-15 ])
         leaves
  in
  List.iter
    (fun l ->
      Sta.add_gate d ~inst:("u" ^ l) ~cell:inv ~inputs:[ "t0" ] ~output:l;
      Sta.add_net d ~name:l
        ~segments:
          [ seg "drv" "m" 200. 50e-15; seg "m" ("s" ^ l) 150. 35e-15 ];
      Sta.add_gate d ~inst:("s" ^ l) ~cell:inv ~inputs:[ l ] ~output:(l ^ "o");
      Sta.add_net d ~name:(l ^ "o")
        ~segments:[ seg "drv" "end" 10. 2e-15 ])
    leaves;
  Sta.add_net d ~name:"clk" ~segments:[ seg "drv" "u0" 80. 25e-15 ];
  Sta.add_net d ~name:"t0" ~segments:t0_segs;
  Sta.add_primary_input d ~net:"clk" ();
  let q = 3 in
  let r = Sta.analyze ~model:(Sta.Awe_model q) d in
  let sinks = List.fold_left (fun n nt -> n + List.length nt.Sta.sinks) 0 r.Sta.nets in
  let timed_nets =
    List.length (List.filter (fun nt -> nt.Sta.sinks <> []) r.Sta.nets)
  in
  claim
    ~paper:"one matrix factorization per net, shared by all of its sinks"
    "%d sinks on %d nets -> %d factorizations, %d MNA builds" sinks timed_nets
    r.Sta.stats.Awe.Stats.factorizations r.Sta.stats.Awe.Stats.mna_builds;
  (* per-sink baseline: what the pre-refactor kernel did — a fresh MNA
     build, factorization, moment set, and crossing search per sink *)
  let per_sink_all () =
    List.iter
      (fun nt ->
        if nt.Sta.sinks <> [] then begin
          let circuit, sink_nodes =
            Sta.net_circuit d ~net:nt.Sta.net_name ~driver_res:500. ~slew:0.
          in
          List.iter
            (fun s ->
              let sys = Mna.build circuit in
              let node = List.assoc s.Sta.sink_inst sink_nodes in
              let a = Awe.approximate sys ~node ~q in
              let tau = Float.max (Awe.elmore_equivalent sys ~node) 1e-15 in
              let t_max = 50. *. tau in
              ignore (Awe.delay a ~threshold:2.5 ~t_max);
              ignore (Awe.Approx.crossing_time a.Awe.response ~threshold:0.5 ~t_max);
              ignore (Awe.Approx.crossing_time a.Awe.response ~threshold:4.5 ~t_max))
            nt.Sta.sinks
        end)
      r.Sta.nets
  in
  let batched_all () = ignore (Sta.analyze ~model:(Sta.Awe_model q) d) in
  let results =
    measure_ns
      [ ("per-sink kernel", per_sink_all); ("batched kernel", batched_all) ]
  in
  List.iter (fun (name, ns) -> note "%-18s %10.0f ns/run" name ns) results;
  (match results with
  | [ (_, base); (_, batched) ] when base > 0. && batched > 0. ->
    note "speedup: %.2fx (batched additionally re-times slews/arrivals)"
      (base /. batched)
  | _ -> ())

(* ------------------------------------------------------------------ *)

(* [chains] independent inverter chains of [depth] stages, each stage
   output routed over a [rungs]-segment RC ladder to the next gate.
   Chains never touch, so every topological wave holds [chains] ready
   nets — the shape that exercises the per-wave parallel fan-out. *)
let parallel_design ~chains ~depth ~rungs =
  let inv =
    Sta.cell ~name:"inv" ~drive_res:500. ~input_cap:20e-15 ~intrinsic:50e-12
  in
  let seg from_ to_ r c =
    { Sta.seg_from = from_; seg_to = to_; res = r; cap = c }
  in
  let ladder sink =
    List.init rungs (fun i ->
        let from_ = if i = 0 then "drv" else Printf.sprintf "w%d" i in
        let to_ = if i = rungs - 1 then sink else Printf.sprintf "w%d" (i + 1) in
        seg from_ to_ (150. +. (10. *. float_of_int i)) 40e-15)
  in
  let d = Sta.create ~vdd:5. ~threshold:0.5 () in
  for c = 0 to chains - 1 do
    let stage_net s = Printf.sprintf "c%dn%d" c s in
    let inst s = Printf.sprintf "u%d_%d" c s in
    let in_net = Printf.sprintf "c%din" c in
    for s = 0 to depth - 1 do
      Sta.add_gate d ~inst:(inst s) ~cell:inv
        ~inputs:[ (if s = 0 then in_net else stage_net (s - 1)) ]
        ~output:(stage_net s)
    done;
    Sta.add_net d ~name:in_net ~segments:(ladder (inst 0));
    for s = 0 to depth - 2 do
      Sta.add_net d ~name:(stage_net s) ~segments:(ladder (inst (s + 1)))
    done;
    (* the last output drives off-design: a stub wire, no sinks *)
    Sta.add_net d ~name:(stage_net (depth - 1))
      ~segments:[ seg "drv" "end" 10. 2e-15 ];
    Sta.add_primary_input d ~net:in_net ();
    Sta.add_primary_output d ~net:(stage_net (depth - 1))
  done;
  d

(* structural report equality, excluding the phase timers (measured
   CPU time; the determinism contract covers results and the integer
   counters, not wall/CPU measurements) *)
let sta_reports_identical (a : Sta.report) (b : Sta.report) =
  a.Sta.nets = b.Sta.nets
  && a.Sta.critical_arrival = b.Sta.critical_arrival
  && a.Sta.critical_path = b.Sta.critical_path
  && a.Sta.failures = b.Sta.failures

let sta_stats_identical (a : Sta.report) (b : Sta.report) =
  let s1 = a.Sta.stats and s2 = b.Sta.stats in
  s1.Awe.Stats.factorizations = s2.Awe.Stats.factorizations
  && s1.Awe.Stats.moment_solves = s2.Awe.Stats.moment_solves
  && s1.Awe.Stats.fits = s2.Awe.Stats.fits
  && s1.Awe.Stats.fit_retries = s2.Awe.Stats.fit_retries
  && s1.Awe.Stats.order_escalations = s2.Awe.Stats.order_escalations
  && s1.Awe.Stats.mna_builds = s2.Awe.Stats.mna_builds

let sta_parallel ?(smoke = false) () =
  section
    (if smoke then "STA parallel fan-out — smoke (overhead gate)"
     else "STA parallel fan-out — wall-clock speedup vs jobs");
  let chains, depth, rungs, reps =
    if smoke then (4, 4, 4, 5) else (16, 16, 8, 5)
  in
  let d = parallel_design ~chains ~depth ~rungs in
  let nets = List.length (Sta.net_names d) in
  let cores = Parallel.default_jobs () in
  note "design: %d chains x %d stages = %d nets; %d recommended domains"
    chains depth nets cores;
  let analyze jobs = Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs d in
  (* per-jobs warm-up + median-of-[reps]; medians are the headline
     numbers, the min/max spread rides along in the JSON *)
  let timed jobs = timed_runs ~reps (fun () -> analyze jobs) in
  let jobs_sweep = [ 1; 2; 4; 8 ] in
  let results = List.map (fun j -> (j, timed j)) jobs_sweep in
  let t1 = (fst (List.assoc 1 results)).t_med in
  let r1 = snd (List.assoc 1 results) in
  let r4 = snd (List.assoc 4 results) in
  List.iter
    (fun (j, (t, _)) ->
      note "jobs=%d  median %8.2f ms  [%.2f .. %.2f]   speedup %.2fx" j
        (1e3 *. t.t_med) (1e3 *. t.t_min) (1e3 *. t.t_max) (t1 /. t.t_med))
    results;
  let identical = sta_reports_identical r1 r4 in
  let stats_identical = sta_stats_identical r1 r4 in
  claim ~paper:"parallel evaluation is an execution detail, not a model"
    "jobs=1 vs jobs=4: reports identical %b, merged counters identical %b"
    identical stats_identical;
  if not (identical && stats_identical) then begin
    note "DETERMINISM VIOLATION — failing";
    exit 1
  end;
  let json_path = "BENCH_sta_parallel.json" in
  let oc = open_out json_path in
  let per_jobs field =
    String.concat ", "
      (List.map
         (fun (j, (t, _)) -> Printf.sprintf "\"%d\": %.3f" j (field t))
         results)
  in
  Printf.fprintf oc
    "{ \"scenario\": \"sta_parallel\", \"smoke\": %b, \"cores\": %d,\n\
    \  \"chains\": %d, \"depth\": %d, \"rungs\": %d, \"nets\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"ms_median_per_jobs\": { %s },\n\
    \  \"ms_min_per_jobs\": { %s },\n\
    \  \"ms_max_per_jobs\": { %s },\n\
    \  \"speedup_vs_jobs1\": { %s },\n\
    \  \"reports_identical\": %b, \"stats_identical\": %b }\n"
    smoke cores chains depth rungs nets reps
    (per_jobs (fun t -> 1e3 *. t.t_med))
    (per_jobs (fun t -> 1e3 *. t.t_min))
    (per_jobs (fun t -> 1e3 *. t.t_max))
    (per_jobs (fun t -> t1 /. t.t_med))
    identical stats_identical;
  close_out oc;
  note "wrote %s" json_path;
  if smoke then begin
    (* overhead gate: jobs=4 must not lose more than 10% to jobs=1
       (plus 5 ms absolute slack so sub-ms noise can't flake the CI
       job on small designs); medians, not single shots *)
    let t4 = (fst (List.assoc 4 results)).t_med in
    if t4 > (1.1 *. t1) +. 5e-3 then begin
      note "SMOKE FAIL: jobs=4 %.2f ms vs jobs=1 %.2f ms (>10%% slower)"
        (1e3 *. t4) (1e3 *. t1);
      exit 1
    end
    else
      note "smoke ok: jobs=4 %.2f ms vs jobs=1 %.2f ms" (1e3 *. t4)
        (1e3 *. t1)
  end

(* the cache's own counters, for cross-jobs determinism of cached runs
   (bytes excluded: the footprint is measured, not counted) *)
let sta_cache_counters_identical (a : Sta.report) (b : Sta.report) =
  let s1 = a.Sta.stats and s2 = b.Sta.stats in
  s1.Awe.Stats.cache_exact_hits = s2.Awe.Stats.cache_exact_hits
  && s1.Awe.Stats.cache_pattern_hits = s2.Awe.Stats.cache_pattern_hits
  && s1.Awe.Stats.cache_misses = s2.Awe.Stats.cache_misses

let sta_cache_bench ?(smoke = false) () =
  section
    (if smoke then "STA structure cache — smoke (hit rate + identity gates)"
     else "STA structure cache — cold vs warm wall-clock");
  let chains, depth, rungs, reps =
    if smoke then (4, 4, 4, 3) else (16, 16, 8, 5)
  in
  let d = parallel_design ~chains ~depth ~rungs in
  let nets = List.length (Sta.net_names d) in
  let cores = Parallel.default_jobs () in
  note "design: %d chains x %d stages = %d nets; %d recommended domains"
    chains depth nets cores;
  let analyze ?cache jobs =
    Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs ?cache d
  in
  let jobs_list = [ 1; 4 ] in
  let per_jobs =
    List.map
      (fun jobs ->
        (* cold: every rep — the warm-up included — rebuilds the cache
           from scratch inside the timed closure, so no rep inherits
           entries from an earlier one (first analysis of the design;
           within-run template hits still fire) *)
        let cold_t, cold_r =
          timed_runs ~reps (fun () ->
              let cache = Sta.create_cache () in
              analyze ~cache jobs)
        in
        (* warm: one shared cache populated by a prior analysis — the
           steady state of incremental re-timing *)
        let cache = Sta.create_cache () in
        ignore (analyze ~cache jobs);
        let warm_t, warm_r = timed_runs ~reps (fun () -> analyze ~cache jobs) in
        let off_r = analyze jobs in
        (jobs, (cold_t, cold_r, warm_t, warm_r, off_r)))
      jobs_list
  in
  let ok = ref true in
  let check what b =
    if not b then begin
      note "IDENTITY VIOLATION: %s" what;
      ok := false
    end;
    b
  in
  let rows =
    List.map
      (fun (jobs, (cold_t, cold_r, warm_t, warm_r, off_r)) ->
        let s = warm_r.Sta.stats in
        let hits = s.Awe.Stats.cache_exact_hits in
        let lookups = hits + s.Awe.Stats.cache_misses in
        let hit_rate =
          if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups
        in
        note
          "jobs=%d  cold median %8.2f ms  warm median %8.2f ms  speedup \
           %.2fx  warm exact-hit rate %.0f%%"
          jobs (1e3 *. cold_t.t_med) (1e3 *. warm_t.t_med)
          (cold_t.t_med /. warm_t.t_med)
          (100. *. hit_rate);
        let reports_id =
          check
            (Printf.sprintf "jobs=%d cache-on reports vs cache-off" jobs)
            (sta_reports_identical off_r cold_r
            && sta_reports_identical off_r warm_r)
        in
        let counters_id =
          check
            (Printf.sprintf "jobs=%d cache-on solve counters vs cache-off"
               jobs)
            (sta_stats_identical off_r cold_r
            && sta_stats_identical off_r warm_r)
        in
        (jobs, cold_t, warm_t, cold_r, warm_r, hit_rate, reports_id,
         counters_id))
      per_jobs
  in
  (* cross-jobs determinism of the cached runs themselves *)
  let _, _, _, cr1, wr1, _, _, _ = List.nth rows 0 in
  let _, _, _, cr4, wr4, _, _, _ = List.nth rows 1 in
  let cross =
    check "cached reports jobs=1 vs jobs=4"
      (sta_reports_identical cr1 cr4 && sta_reports_identical wr1 wr4)
    && check "cache counters jobs=1 vs jobs=4"
         (sta_cache_counters_identical cr1 cr4
         && sta_cache_counters_identical wr1 wr4)
  in
  claim
    ~paper:"don't pay for the same structure twice (eq. 32 amortized)"
    "cache-on/off identical %b, cross-jobs identical %b"
    (List.for_all (fun (_, _, _, _, _, _, r, c) -> r && c) rows)
    cross;
  let json_path = "BENCH_sta_cache.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{ \"scenario\": \"sta_cache\", \"smoke\": %b, \"cores\": %d,\n\
    \  \"chains\": %d, \"depth\": %d, \"rungs\": %d, \"nets\": %d, \"reps\": \
     %d,\n\
    \  \"jobs\": {\n%s\n  },\n\
    \  \"cross_jobs_identical\": %b }\n"
    smoke cores chains depth rungs nets reps
    (String.concat ",\n"
       (List.map
          (fun (jobs, cold_t, warm_t, cold_r, warm_r, hit_rate, rid, cid) ->
            let s = warm_r.Sta.stats and c = cold_r.Sta.stats in
            Printf.sprintf
              "    \"%d\": { \"cold_ms\": [%.3f, %.3f, %.3f], \"warm_ms\": \
               [%.3f, %.3f, %.3f],\n\
              \      \"speedup_warm_vs_cold\": %.2f,\n\
              \      \"cold_exact_hits\": %d, \"cold_pattern_hits\": %d, \
               \"cold_misses\": %d,\n\
              \      \"warm_exact_hits\": %d, \"warm_misses\": %d, \
               \"warm_hit_rate\": %.3f,\n\
              \      \"cache_bytes\": %d,\n\
              \      \"reports_identical\": %b, \"counters_identical\": %b }"
              jobs (1e3 *. cold_t.t_min) (1e3 *. cold_t.t_med)
              (1e3 *. cold_t.t_max) (1e3 *. warm_t.t_min)
              (1e3 *. warm_t.t_med) (1e3 *. warm_t.t_max)
              (cold_t.t_med /. warm_t.t_med)
              c.Awe.Stats.cache_exact_hits c.Awe.Stats.cache_pattern_hits
              c.Awe.Stats.cache_misses s.Awe.Stats.cache_exact_hits
              s.Awe.Stats.cache_misses hit_rate s.Awe.Stats.cache_bytes rid
              cid)
          rows))
    cross;
  close_out oc;
  note "wrote %s" json_path;
  if not !ok then begin
    note "IDENTITY VIOLATION — failing";
    exit 1
  end;
  if smoke then begin
    (* CI gate: the chain design must produce exact-tier hits — warm
       runs should hit on (essentially) every looked-up net *)
    let warm_hits (_, _, _, _, wr, _, _, _) =
      wr.Sta.stats.Awe.Stats.cache_exact_hits
    in
    if List.exists (fun row -> warm_hits row = 0) rows then begin
      note "SMOKE FAIL: warm run produced no exact-tier hits";
      exit 1
    end
    else
      note "smoke ok: warm exact hits %s"
        (String.concat "/"
           (List.map (fun row -> string_of_int (warm_hits row)) rows))
  end

(* The cold-cache scaling scenario behind ROADMAP item 4: (1) the
   regression gate — cold cache at jobs=4 must stay within 10% of
   jobs=1 on the 272-net chain (the configuration that used to run
   3x slower); (2) a jobs sweep over the Synth 10k-net-class
   generators, with the full determinism identity checks and — only
   when the machine actually has more than one core — a speedup gate
   on the cache-hostile buffered mesh, where parallel solves are the
   sole lever. *)
let sta_scale ?(smoke = false) () =
  section
    (if smoke then "STA scale — smoke (cold-overhead gate + identities)"
     else "STA scale — cold-cache jobs sweep on 10k-net-class designs");
  let cores = Parallel.default_jobs () in
  note "%d recommended domains" cores;
  let cold_analyze d jobs =
    (* truly cold: fresh cache built inside the timed closure *)
    let cache = Sta.create_cache () in
    Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs ~cache d
  in
  let ok = ref true in
  let check what b =
    if not b then begin
      note "IDENTITY VIOLATION: %s" what;
      ok := false
    end
  in
  (* -- part 1: the chain-design regression gate ------------------- *)
  let chains, depth, rungs, reps =
    if smoke then (4, 4, 4, 5) else (16, 16, 8, 5)
  in
  let chain_d = parallel_design ~chains ~depth ~rungs in
  let chain_nets = List.length (Sta.net_names chain_d) in
  let t1, r1 = timed_runs ~reps (fun () -> cold_analyze chain_d 1) in
  let t4, r4 = timed_runs ~reps (fun () -> cold_analyze chain_d 4) in
  note
    "chain %d nets: cold jobs=1 %8.2f ms, cold jobs=4 %8.2f ms (ratio %.2fx)"
    chain_nets (1e3 *. t1.t_med) (1e3 *. t4.t_med) (t4.t_med /. t1.t_med);
  check "chain cold reports jobs=1 vs jobs=4"
    (sta_reports_identical r1 r4 && sta_stats_identical r1 r4
    && sta_cache_counters_identical r1 r4);
  (* the regression this scenario exists to keep dead: cold jobs=4
     within 10% of cold jobs=1 (5 ms absolute slack against sub-ms
     noise on small smoke designs) *)
  let chain_gate_ok = t4.t_med <= (1.1 *. t1.t_med) +. 5e-3 in
  if not chain_gate_ok then
    note "GATE FAIL: cold jobs=4 %.2f ms vs jobs=1 %.2f ms (>10%% slower)"
      (1e3 *. t4.t_med) (1e3 *. t1.t_med);
  (* -- part 2: jobs sweep over the Synth generators --------------- *)
  let designs =
    if smoke then
      [ ("grid", Sta.Synth.grid ~rows:16 ~cols:16 ());
        ("clock_tree", Sta.Synth.clock_tree ~levels:5 ~fanout:4 ());
        ("buffered_mesh", Sta.Synth.buffered_mesh ~rows:16 ~cols:16 ()) ]
    else
      [ ("grid", Sta.Synth.grid ~rows:100 ~cols:100 ());
        ("clock_tree", Sta.Synth.clock_tree ~levels:7 ~fanout:4 ());
        ("buffered_mesh", Sta.Synth.buffered_mesh ~rows:50 ~cols:50 ()) ]
  in
  let sweep_reps = if smoke then 3 else 5 in
  let jobs_sweep = [ 1; 4; 8 ] in
  let per_design =
    List.map
      (fun (name, d) ->
        let nets = Sta.Synth.net_count d in
        let results =
          List.map
            (fun j ->
              (j, timed_runs ~reps:sweep_reps (fun () -> cold_analyze d j)))
            jobs_sweep
        in
        let t1 = (fst (List.assoc 1 results)).t_med in
        let r1 = snd (List.assoc 1 results) in
        List.iter
          (fun (j, (t, r)) ->
            note "%-14s %6d nets  jobs=%d  cold median %8.2f ms  speedup %.2fx"
              name nets j (1e3 *. t.t_med) (t1 /. t.t_med);
            if j <> 1 then
              check
                (Printf.sprintf "%s cold jobs=1 vs jobs=%d" name j)
                (sta_reports_identical r1 r
                && sta_stats_identical r1 r
                && sta_cache_counters_identical r1 r))
          results;
        (name, nets, results))
      designs
  in
  (* speedup gate: only meaningful with real cores.  The buffered mesh
     is the cache-hostile design — few repeated templates, so parallel
     solves are the only lever and any scheduling win must show up
     here.  2 ms slack so borderline two-core machines don't flake. *)
  let speedup_gate_ok =
    if cores <= 1 then begin
      note "speedup gate skipped: %d core(s) available" cores;
      true
    end
    else begin
      let _, _, results =
        List.find (fun (n, _, _) -> n = "buffered_mesh") per_design
      in
      let t1 = (fst (List.assoc 1 results)).t_med in
      let t4 = (fst (List.assoc 4 results)).t_med in
      let pass = t4 <= t1 +. 2e-3 in
      if not pass then
        note "GATE FAIL: buffered_mesh cold jobs=4 %.2f ms vs jobs=1 %.2f ms"
          (1e3 *. t4) (1e3 *. t1);
      pass
    end
  in
  claim ~paper:"domain decomposition pays only at useful granularity"
    "cold jobs=4/jobs=1 ratio %.2f on %d-net chain, identities clean %b"
    (t4.t_med /. t1.t_med) chain_nets !ok;
  let json_path = "BENCH_sta_scale.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{ \"scenario\": \"sta_scale\", \"smoke\": %b, \"cores\": %d,\n\
    \  \"chain\": { \"nets\": %d, \"reps\": %d,\n\
    \    \"cold_ms_jobs1\": [%.3f, %.3f, %.3f],\n\
    \    \"cold_ms_jobs4\": [%.3f, %.3f, %.3f],\n\
    \    \"ratio_jobs4_vs_jobs1\": %.3f, \"gate_ok\": %b },\n\
    \  \"designs\": {\n%s\n  },\n\
    \  \"identities_ok\": %b, \"speedup_gate_ok\": %b }\n"
    smoke cores chain_nets reps (1e3 *. t1.t_min) (1e3 *. t1.t_med)
    (1e3 *. t1.t_max) (1e3 *. t4.t_min) (1e3 *. t4.t_med) (1e3 *. t4.t_max)
    (t4.t_med /. t1.t_med) chain_gate_ok
    (String.concat ",\n"
       (List.map
          (fun (name, nets, results) ->
            let t1 = (fst (List.assoc 1 results)).t_med in
            Printf.sprintf
              "    \"%s\": { \"nets\": %d, \"cold_ms_per_jobs\": { %s },\n\
              \      \"speedup_vs_jobs1\": { %s } }"
              name nets
              (String.concat ", "
                 (List.map
                    (fun (j, (t, _)) ->
                      Printf.sprintf "\"%d\": %.3f" j (1e3 *. t.t_med))
                    results))
              (String.concat ", "
                 (List.map
                    (fun (j, (t, _)) ->
                      Printf.sprintf "\"%d\": %.2f" j (t1 /. t.t_med))
                    results)))
          per_design))
    !ok speedup_gate_ok;
  close_out oc;
  note "wrote %s" json_path;
  if not (!ok && chain_gate_ok && speedup_gate_ok) then begin
    note "STA SCALE FAIL — failing";
    exit 1
  end
  else note "sta_scale ok"

(* Incremental ECO timing: a long-lived [Sta.Session] re-times only
   the dirty cone of an edit — the edited net is re-solved, downstream
   arrivals are rebuilt from the per-net memos by arithmetic alone —
   so a steady-state single-element edit must beat a cold full
   [analyze] of the same design by a wide margin.  The gate is the
   headline of the ECO story: >= 5x at jobs=1 (the pool is irrelevant
   when one net is dirty).  Identity checks pin the bit-identity
   contract: the incremental report equals a cold analyze of the
   edited design, field for field, at jobs 1 and 4, and the session
   cache fingerprint equals the cold cache's. *)
let sta_eco ?(smoke = false) () =
  section
    (if smoke then "STA ECO — smoke (incremental-vs-cold gate + identities)"
     else "STA ECO — steady-state dirty-cone re-time vs cold analyze");
  let cores = Parallel.default_jobs () in
  let rows, cols, reps = if smoke then (24, 24, 5) else (100, 100, 5) in
  let mk_design () =
    let d = Sta.Synth.grid ~rows ~cols () in
    (* a clock makes every primary output an endpoint, so the slack
       tables the identity checks compare are non-trivial *)
    Sta.set_clock d ~period:5e-9;
    d
  in
  let nets = Sta.Synth.net_count (mk_design ()) in
  (* Two edit sites.  The gated one sits next to an endpoint — the
     typical ECO fix (resize a wire feeding a failing output), whose
     dirty cone is a handful of nets.  The mid-grid one is the
     worst-ish case: its slew cone is the whole downstream quadrant,
     so it shows how the advantage shrinks as the cone grows —
     measured and reported, not gated. *)
  let endpoint_net = Printf.sprintf "w%d_%d" (rows - 2) (cols - 2) in
  let mid_net = Printf.sprintf "w%d_%d" (rows / 2) (cols / 2) in
  (* two resistance values per site; alternating between them keeps
     every retime genuinely dirty (a no-op edit would flatter the
     incremental path) *)
  let r_a = 80. and r_b = 260. in
  let mk_edit net v =
    Sta.Session.Set_resistance { net; index = 0; value = v }
  in
  note "design: grid %dx%d (%d nets); edits: %s (endpoint), %s (mid); \
        trunk R %g <-> %g Ohm"
    rows cols nets endpoint_net mid_net r_a r_b;
  note "%d recommended domains" cores;
  let ok = ref true in
  let check what b =
    if not b then begin
      note "IDENTITY VIOLATION: %s" what;
      ok := false
    end
  in
  let cold_analyze d jobs =
    let cache = Sta.create_cache () in
    Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs ~cache d
  in
  (* -- part 1: the speedup gate (jobs=1, median-of-reps) ----------- *)
  let cold_d = mk_design () in
  let cold_t, _ = timed_runs ~reps (fun () -> cold_analyze cold_d 1) in
  let s =
    Sta.Session.create ~model:Sta.Awe_auto ~sparse:true ~jobs:1 (mk_design ())
  in
  (* steady-state loop over one edit site: alternate the two values,
     one retime per edit; dirty-cone size comes from the totals delta *)
  let measure_eco label net =
    let flip = ref false in
    let before = Sta.Session.totals s in
    let t, _ =
      timed_runs ~reps (fun () ->
          flip := not !flip;
          (match Sta.Session.apply s (mk_edit net (if !flip then r_b else r_a))
           with
          | Ok () -> ()
          | Error msg -> failwith ("sta_eco: edit rejected: " ^ msg));
          match Sta.Session.retime s with
          | Ok r -> r
          | Error msg -> failwith ("sta_eco: retime failed: " ^ msg))
    in
    let after = Sta.Session.totals s in
    let retimes =
      after.Sta.Session.total_retimes - before.Sta.Session.total_retimes
    in
    let dirty =
      float_of_int
        (after.Sta.Session.total_dirty - before.Sta.Session.total_dirty)
      /. float_of_int (max 1 retimes)
    in
    note
      "eco %-9s jobs=1  median %8.2f ms  [%.2f .. %.2f]  speedup %5.1fx  \
       (%.1f of %d nets re-solved per retime)"
      label (1e3 *. t.t_med) (1e3 *. t.t_min) (1e3 *. t.t_max)
      (cold_t.t_med /. t.t_med) dirty nets;
    (t, dirty)
  in
  note "cold analyze  jobs=1  median %8.2f ms  [%.2f .. %.2f]"
    (1e3 *. cold_t.t_med) (1e3 *. cold_t.t_min) (1e3 *. cold_t.t_max);
  let eco_t, dirty_endpoint = measure_eco "endpoint" endpoint_net in
  let mid_t, dirty_mid = measure_eco "mid-grid" mid_net in
  let totals = Sta.Session.totals s in
  let speedup = cold_t.t_med /. eco_t.t_med in
  check "no full fallbacks taken" (totals.Sta.Session.total_fallbacks = 0);
  let gate_ok = speedup >= 5. in
  if not gate_ok then
    note "GATE FAIL: endpoint eco retime %.2f ms vs cold %.2f ms — %.1fx < 5x"
      (1e3 *. eco_t.t_med) (1e3 *. cold_t.t_med) speedup;
  (* -- part 2: bit-identity at jobs 1 and 4 ----------------------- *)
  let identical (a : Sta.report) (b : Sta.report) =
    sta_reports_identical a b
    && a.Sta.slacks = b.Sta.slacks
    && a.Sta.worst_slack = b.Sta.worst_slack
  in
  List.iter
    (fun j ->
      let sj =
        Sta.Session.create ~model:Sta.Awe_auto ~sparse:true ~jobs:j
          (mk_design ())
      in
      (* the deep-cone edit, so the identity check covers a retime that
         re-solves hundreds of nets across several waves *)
      (match Sta.Session.apply sj (mk_edit mid_net r_b) with
      | Ok () -> ()
      | Error msg -> failwith ("sta_eco: edit rejected: " ^ msg));
      let inc =
        match Sta.Session.retime sj with
        | Ok r -> r
        | Error msg -> failwith ("sta_eco: retime failed: " ^ msg)
      in
      let cold_cache = Sta.create_cache () in
      let cold =
        Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs:1 ~cache:cold_cache
          (Sta.Session.design sj)
      in
      check
        (Printf.sprintf "eco jobs=%d report vs cold analyze of edited design" j)
        (identical inc cold);
      check
        (Printf.sprintf "eco jobs=%d cache fingerprint vs cold cache" j)
        (Sta.cache_fingerprint (Sta.Session.cache sj)
        = Sta.cache_fingerprint cold_cache);
      (* edit-then-revert restores the pristine fingerprint exactly *)
      let undone = Sta.Session.revert_all sj in
      (match Sta.Session.retime sj with
      | Ok _ -> ()
      | Error msg -> failwith ("sta_eco: revert retime failed: " ^ msg));
      let pristine_cache = Sta.create_cache () in
      ignore
        (Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs:1
           ~cache:pristine_cache (mk_design ()));
      check
        (Printf.sprintf
           "eco jobs=%d fingerprint restored after reverting %d edit(s)" j
           undone)
        (Sta.cache_fingerprint (Sta.Session.cache sj)
        = Sta.cache_fingerprint pristine_cache))
    [ 1; 4 ];
  claim ~paper:"ECO re-analysis touches the changed cone, not the design"
    "endpoint retime %.2f ms vs cold %.2f ms (%.1fx) on %d nets, \
     identities clean %b"
    (1e3 *. eco_t.t_med) (1e3 *. cold_t.t_med) speedup nets !ok;
  let json_path = "BENCH_sta_eco.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{ \"scenario\": \"sta_eco\", \"smoke\": %b, \"cores\": %d,\n\
    \  \"design\": { \"kind\": \"grid\", \"rows\": %d, \"cols\": %d, \
     \"nets\": %d },\n\
    \  \"edits\": { \"r_a\": %g, \"r_b\": %g,\n\
    \    \"endpoint\": { \"net\": \"%s\", \"dirty_per_retime\": %.1f },\n\
    \    \"mid\": { \"net\": \"%s\", \"dirty_per_retime\": %.1f } },\n\
    \  \"reps\": %d,\n\
    \  \"cold_ms\": [%.3f, %.3f, %.3f],\n\
    \  \"eco_endpoint_ms\": [%.3f, %.3f, %.3f],\n\
    \  \"eco_mid_ms\": [%.3f, %.3f, %.3f],\n\
    \  \"speedup_endpoint\": %.2f, \"speedup_mid\": %.2f, \"fallbacks\": %d,\n\
    \  \"gate_ok\": %b, \"identities_ok\": %b }\n"
    smoke cores rows cols nets r_a r_b endpoint_net dirty_endpoint mid_net
    dirty_mid reps (1e3 *. cold_t.t_min) (1e3 *. cold_t.t_med)
    (1e3 *. cold_t.t_max) (1e3 *. eco_t.t_min) (1e3 *. eco_t.t_med)
    (1e3 *. eco_t.t_max) (1e3 *. mid_t.t_min) (1e3 *. mid_t.t_med)
    (1e3 *. mid_t.t_max) speedup
    (cold_t.t_med /. mid_t.t_med)
    totals.Sta.Session.total_fallbacks gate_ok !ok;
  close_out oc;
  note "wrote %s" json_path;
  if not (gate_ok && !ok) then begin
    note "STA ECO FAIL — failing";
    exit 1
  end
  else note "sta_eco ok"

(* Multi-corner signoff: N corners derate element values but never
   topology, so [Sta.analyze_corners] shares one pattern-tier store
   across the per-corner caches and every topology pays for its
   symbolic sparse analysis exactly once.  The gates are counter-based
   (exact-tier misses = fresh symbolic analyses), so they hold on any
   machine — wall-clock numbers ride along for information only. *)
let sta_corners ?(smoke = false) () =
  section
    (if smoke then "STA multi-corner — smoke (shared pattern-tier gates)"
     else
       "STA multi-corner — one symbolic analysis per topology across \
        corners");
  let cores = Parallel.default_jobs () in
  let rows, cols, reps = if smoke then (12, 12, 3) else (40, 40, 5) in
  let d = Sta.Synth.grid ~rows ~cols () in
  (* a clock makes every primary output an endpoint, so each corner
     reports a finite worst slack *)
  Sta.set_clock d ~period:5e-9;
  let corners =
    [ Circuit.Corner.nominal;
      Circuit.Corner.make ~name:"slow" ~wire_res:1.25 ~wire_cap:1.15
        ~cell_drive:1.3 ~cell_cap:1.1 ~cell_intrinsic:1.2 ();
      Circuit.Corner.make ~name:"fast" ~wire_res:0.85 ~wire_cap:0.9
        ~cell_drive:0.75 ~cell_cap:0.95 ~cell_intrinsic:0.85 ();
      Circuit.Corner.make ~name:"hot_wire" ~wire_res:1.4 ~wire_cap:1.05 () ]
  in
  let n = List.length corners in
  let nets = Sta.Synth.net_count d in
  note "design: grid %dx%d (%d nets); %d corners; %d recommended domains"
    rows cols nets n cores;
  (* baseline unit of symbolic work: one corner, private stores *)
  let single jobs =
    let cache = Sta.create_cache () in
    Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs ~cache
      (Sta.corner_design d (List.hd corners))
  in
  (* the naive N-corner flow: private stores per corner, so every
     corner re-pays the symbolic analyses *)
  let unshared jobs =
    List.map
      (fun c ->
        let cache = Sta.create_cache () in
        Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs ~cache
          (Sta.corner_design d c))
      corners
  in
  let multi jobs = Sta.analyze_corners ~sparse:true ~jobs d corners in
  let t_single, r_single = timed_runs ~reps (fun () -> single 1) in
  let t_unshared, rs_unshared = timed_runs ~reps (fun () -> unshared 1) in
  let t_multi, cr = timed_runs ~reps (fun () -> multi 1) in
  let misses (r : Sta.report) = r.Sta.stats.Awe.Stats.cache_misses in
  let phits (r : Sta.report) = r.Sta.stats.Awe.Stats.cache_pattern_hits in
  let sum f = List.fold_left (fun acc run -> acc + f run.Sta.run_report) 0 in
  let m_single = misses r_single in
  let m_multi = sum misses cr.Sta.runs in
  let m_unshared =
    List.fold_left (fun acc r -> acc + misses r) 0 rs_unshared
  in
  let p_multi = sum phits cr.Sta.runs in
  note "symbolic analyses (exact-tier misses): single corner %d, %d-corner \
        shared %d, %d-corner unshared %d"
    m_single n m_multi n m_unshared;
  note "wall-clock medians: single %.2f ms, %d-corner shared %.2f ms, \
        unshared %.2f ms"
    (1e3 *. t_single.t_med) n (1e3 *. t_multi.t_med)
    (1e3 *. t_unshared.t_med);
  List.iter
    (fun cs ->
      note "corner %-10s worst slack %10.4g ns  critical arrival %10.4g ns"
        cs.Sta.cs_name (1e9 *. cs.Sta.cs_worst_slack)
        (1e9 *. cs.Sta.cs_critical_arrival))
    cr.Sta.summary;
  (* gate 1: N corners cost at most ~1.3x one corner's symbolic work —
     corners 2..N must ride the shared pattern tier, not re-analyze *)
  let work_ratio = float_of_int m_multi /. float_of_int (max 1 m_single) in
  let work_gate_ok = work_ratio <= 1.3 in
  if not work_gate_ok then
    note "GATE FAIL: %d-corner symbolic work %.2fx the single corner" n
      work_ratio;
  (* gate 2: of the lookups that missed the exact tier, at least
     (N-1)/N hit the shared pattern tier — each later corner reuses
     what corner 1 paid for *)
  let share =
    float_of_int p_multi /. float_of_int (max 1 (p_multi + m_multi))
  in
  let share_floor = float_of_int (n - 1) /. float_of_int n in
  let share_gate_ok = share >= share_floor -. 1e-9 in
  if not share_gate_ok then
    note "GATE FAIL: pattern-hit share %.3f below (N-1)/N = %.3f" share
      share_floor;
  (* determinism: the corner sweep is bit-identical across jobs *)
  let cr4 = multi 4 in
  let runs_identical =
    List.for_all2
      (fun a b ->
        sta_reports_identical a.Sta.run_report b.Sta.run_report
        && sta_stats_identical a.Sta.run_report b.Sta.run_report
        && sta_cache_counters_identical a.Sta.run_report b.Sta.run_report
        && a.Sta.run_report.Sta.slacks = b.Sta.run_report.Sta.slacks
        && a.Sta.run_report.Sta.worst_slack
           = b.Sta.run_report.Sta.worst_slack)
      cr.Sta.runs cr4.Sta.runs
    && cr.Sta.worst_corner = cr4.Sta.worst_corner
    && cr.Sta.worst_slack_overall = cr4.Sta.worst_slack_overall
  in
  if not runs_identical then note "DETERMINISM VIOLATION: jobs=1 vs jobs=4";
  (* and identical to the naive unshared flow's reports (caching and
     sharing are execution details, never results) *)
  let reports_match_unshared =
    List.for_all2
      (fun run r ->
        sta_reports_identical run.Sta.run_report r
        && run.Sta.run_report.Sta.slacks = r.Sta.slacks)
      cr.Sta.runs rs_unshared
  in
  if not reports_match_unshared then
    note "IDENTITY VIOLATION: shared-tier reports differ from unshared";
  claim
    ~paper:"corners change values, never topology: symbolic work is \
            corner-invariant"
    "%d corners cost %.2fx one corner's symbolic analyses; pattern-hit \
     share %.2f; worst corner %s"
    n work_ratio share cr.Sta.worst_corner;
  let json_path = "BENCH_sta_corners.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{ \"scenario\": \"sta_corners\", \"smoke\": %b, \"cores\": %d,\n\
    \  \"rows\": %d, \"cols\": %d, \"nets\": %d, \"corners\": %d, \"reps\": \
     %d,\n\
    \  \"ms_single\": [%.3f, %.3f, %.3f],\n\
    \  \"ms_multi_shared\": [%.3f, %.3f, %.3f],\n\
    \  \"ms_multi_unshared\": [%.3f, %.3f, %.3f],\n\
    \  \"symbolic_misses_single\": %d, \"symbolic_misses_multi\": %d,\n\
    \  \"symbolic_misses_unshared\": %d, \"pattern_hits_multi\": %d,\n\
    \  \"symbolic_work_ratio\": %.3f, \"pattern_hit_share\": %.3f,\n\
    \  \"worst_corner\": \"%s\", \"worst_slack_overall\": %.6g,\n\
    \  \"work_gate_ok\": %b, \"share_gate_ok\": %b,\n\
    \  \"jobs_identical\": %b, \"unshared_identical\": %b }\n"
    smoke cores rows cols nets n reps (1e3 *. t_single.t_min)
    (1e3 *. t_single.t_med) (1e3 *. t_single.t_max) (1e3 *. t_multi.t_min)
    (1e3 *. t_multi.t_med) (1e3 *. t_multi.t_max) (1e3 *. t_unshared.t_min)
    (1e3 *. t_unshared.t_med) (1e3 *. t_unshared.t_max) m_single m_multi
    m_unshared p_multi work_ratio share cr.Sta.worst_corner
    cr.Sta.worst_slack_overall work_gate_ok share_gate_ok runs_identical
    reports_match_unshared;
  close_out oc;
  note "wrote %s" json_path;
  if
    not
      (work_gate_ok && share_gate_ok && runs_identical
     && reports_match_unshared)
  then begin
    note "STA CORNERS FAIL — failing";
    exit 1
  end
  else note "sta_corners ok"

(* Lint 2.0 at scale: the whole pass stack (core checks + W2xx health
   + W13x coverage) over Synth grids, gated on the dataflow engine's
   work counter staying near-linear in net count.  The gate is
   counter-based — transfer applications plus the passes' explicit
   linear-scan ticks — so it holds on loaded or single-core runners;
   wall time rides along for information only. *)
let lint_scale ?(smoke = false) () =
  section
    (if smoke then "Lint scale — smoke (near-linearity gate)"
     else "Lint scale — dataflow work vs design size");
  let r1, c1, r2, c2 = if smoke then (20, 20, 40, 40) else (50, 50, 100, 100) in
  let cores = Parallel.default_jobs () in
  let run rows cols =
    let d = Sta.Synth.grid ~rows ~cols () in
    let nets = List.length (Sta.net_names d) in
    Lint.Dataflow.reset_work ();
    let t0 = Unix.gettimeofday () in
    let diags = Lint.check_design d in
    let t = Unix.gettimeofday () -. t0 in
    (nets, Lint.Dataflow.work (), List.length diags, t)
  in
  ignore (run 4 4) (* warm-up *);
  let nets_s, work_s, diags_s, t_s = run r1 c1 in
  let nets_b, work_b, diags_b, t_b = run r2 c2 in
  note "grid %dx%d: %6d nets  %9d work  %4d diagnostics  %8.2f ms" r1 c1
    nets_s work_s diags_s (1e3 *. t_s);
  note "grid %dx%d: %6d nets  %9d work  %4d diagnostics  %8.2f ms" r2 c2
    nets_b work_b diags_b (1e3 *. t_b);
  let per_s = float_of_int work_s /. float_of_int nets_s in
  let per_b = float_of_int work_b /. float_of_int nets_b in
  let ratio = per_b /. per_s in
  claim ~paper:"static analysis must stay cheap next to the solves it guards"
    "work/net: %.1f (small) -> %.1f (big), growth %.3fx (gate: <= 1.5)"
    per_s per_b ratio;
  let ok = ratio <= 1.5 in
  let json_path = "BENCH_lint_scale.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{ \"scenario\": \"lint_scale\", \"smoke\": %b, \"cores\": %d,\n\
    \  \"grid_small\": [%d, %d], \"grid_big\": [%d, %d],\n\
    \  \"nets_small\": %d, \"nets_big\": %d,\n\
    \  \"work_small\": %d, \"work_big\": %d,\n\
    \  \"diags_small\": %d, \"diags_big\": %d,\n\
    \  \"ms_small\": %.3f, \"ms_big\": %.3f,\n\
    \  \"work_per_net_small\": %.3f, \"work_per_net_big\": %.3f,\n\
    \  \"work_per_net_growth\": %.4f, \"linearity_gate_ok\": %b }\n"
    smoke cores r1 c1 r2 c2 nets_s nets_b work_s work_b diags_s diags_b
    (1e3 *. t_s) (1e3 *. t_b) per_s per_b ratio ok;
  close_out oc;
  note "wrote %s" json_path;
  if not ok then begin
    note "LINT SCALE FAIL — work per net grew %.3fx" ratio;
    exit 1
  end
  else note "lint_scale ok"

let verify_bench () =
  section "Verification harness — differential oracle throughput";
  let seed = 42 and cases = 24 in
  (* one untimed pass for the quality numbers: the oracle's adaptive
     point counts and the worst model/simulator disagreement *)
  let outcomes =
    List.init cases (fun i ->
        Verify.Oracle.check (Verify.Cases.random_case ~seed:(seed + i)))
  in
  let failures =
    List.length (List.filter (fun o -> not (Verify.Oracle.passed o)) outcomes)
  in
  let worst =
    List.fold_left
      (fun acc (o : Verify.Oracle.outcome) ->
        if Float.is_nan o.Verify.Oracle.measured then acc
        else Float.max acc o.Verify.Oracle.measured)
      0. outcomes
  in
  let points =
    List.fold_left
      (fun acc (o : Verify.Oracle.outcome) ->
        acc + o.Verify.Oracle.oracle_points)
      0 outcomes
  in
  (* timed: a full oracle check (AWE + adaptive reference simulation +
     comparison) vs the AWE reduction alone, on the same case *)
  let one_case () =
    ignore (Verify.Oracle.check (Verify.Cases.random_case ~seed))
  in
  let awe_only () =
    let c = Verify.Cases.random_case ~seed in
    let sys = Mna.build c.Verify.Cases.circuit in
    ignore (Awe.auto sys ~node:c.Verify.Cases.node)
  in
  let results =
    measure_ns [ ("oracle check", one_case); ("awe reduction", awe_only) ]
  in
  List.iter (fun (name, ns) -> note "%-14s %12.0f ns/case" name ns) results;
  let ns_of name = try List.assoc name results with Not_found -> nan in
  let ns_oracle = ns_of "oracle check" and ns_awe = ns_of "awe reduction" in
  let per_sec = if ns_oracle > 0. then 1e9 /. ns_oracle else nan in
  note "oracle throughput: %.1f circuits/sec" per_sec;
  note "%d cases, %d failures, worst rel L2 %.4g, %d reference points" cases
    failures worst points;
  let oc = open_out "BENCH_verify.json" in
  Printf.fprintf oc
    "{ \"scenario\": \"verify\", \"seed\": %d, \"cases\": %d, \"failures\": \
     %d,\n\
    \  \"worst_rel_l2\": %.6g, \"oracle_points\": %d,\n\
    \  \"oracle_ns_per_case\": %.0f, \"awe_ns_per_case\": %.0f,\n\
    \  \"circuits_per_sec\": %.2f }\n"
    seed cases failures worst points ns_oracle ns_awe per_sec;
  close_out oc;
  note "wrote BENCH_verify.json"

(* ------------------------------------------------------------------ *)

(* Model-order reduction as a pre-AWE pass (ROADMAP item 3): cold
   analyze with the pass on vs off, the node-reduction ratio, per-net
   accuracy classified by which transforms fired (exact merges must be
   bit-close, moment-preserving lumps within the oracle band), and the
   pattern-tier hit delta — the ladder's three unreduced topology
   classes collapse to one reduced template, so the symbolic tier
   should hit more with the pass on. *)
let sta_reduce ?(smoke = false) () =
  section
    (if smoke then "STA model-order reduction — smoke (elimination + gates)"
     else "STA model-order reduction — reduced vs unreduced cold analyze");
  let lstages, llen, lfan, grows, gcols, reps =
    if smoke then (6, 30, 6, 5, 5, 3) else (24, 40, 8, 10, 10, 5)
  in
  let designs =
    [ ( "rc_ladder",
        Sta.Synth.rc_ladder ~stages:lstages ~length:llen ~fanout:lfan () );
      ("grid", Sta.Synth.grid ~rows:grows ~cols:gcols ()) ]
  in
  let cores = Parallel.default_jobs () in
  let ok = ref true in
  let check what b =
    if not b then begin
      note "GATE FAIL: %s" what;
      ok := false
    end;
    b
  in
  let jobs_list = [ 1; 4 ] in
  let rows =
    List.map
      (fun (name, d) ->
        let nets = Sta.net_names d in
        (* the stage circuits as the timer sees them: denominator of
           the elimination ratio (ground excluded), and the per-net
           transform classification (driver values don't change
           topology, so nominal ones serve) *)
        let total_nodes = ref 0 in
        let exact_net = Hashtbl.create 64 in
        List.iter
          (fun net ->
            let c, sinks =
              Sta.net_circuit d ~net ~driver_res:100. ~slew:10e-12
            in
            total_nodes := !total_nodes + c.Netlist.node_count - 1;
            let r = Reduce.reduce ~ports:(List.map snd sinks) c in
            let rep = r.Reduce.report in
            Hashtbl.replace exact_net net
              (rep.Reduce.chain_lumps + rep.Reduce.star_merges = 0))
          nets;
        let per_jobs =
          List.map
            (fun jobs ->
              let on_t, on_r =
                timed_runs ~reps (fun () ->
                    Sta.analyze ~model:Sta.Awe_auto ~jobs d)
              in
              let off_t, off_r =
                timed_runs ~reps (fun () ->
                    Sta.analyze ~model:Sta.Awe_auto ~reduce:false ~jobs d)
              in
              note
                "%-10s jobs=%d  reduced median %8.2f ms  unreduced median \
                 %8.2f ms  ratio %.2fx"
                name jobs (1e3 *. on_t.t_med) (1e3 *. off_t.t_med)
                (on_t.t_med /. off_t.t_med);
              (jobs, on_t, off_t, on_r, off_r))
            jobs_list
        in
        let _, _, _, on_r, off_r = List.hd per_jobs in
        let s = on_r.Sta.stats in
        let eliminated = s.Awe.Stats.reduce_nodes_eliminated in
        let ratio =
          if !total_nodes = 0 then 0.
          else float_of_int eliminated /. float_of_int !total_nodes
        in
        note
          "%-10s %d nets, %d stage nodes, %d eliminated (%.0f%%); %d \
           parallel, %d series, %d chain, %d star"
          name (List.length nets) !total_nodes eliminated (100. *. ratio)
          s.Awe.Stats.reduce_parallel_merges s.Awe.Stats.reduce_series_merges
          s.Awe.Stats.reduce_chain_lumps s.Awe.Stats.reduce_star_merges;
        (* per-sink accuracy against the unreduced pipeline *)
        let off_nets = Hashtbl.create 64 in
        List.iter
          (fun (nt : Sta.net_timing) ->
            Hashtbl.replace off_nets nt.Sta.net_name nt)
          off_r.Sta.nets;
        let worst_exact = ref 0. and worst_lumped = ref 0. in
        List.iter
          (fun (nt : Sta.net_timing) ->
            match Hashtbl.find_opt off_nets nt.Sta.net_name with
            | None -> ignore (check (nt.Sta.net_name ^ " timed in both") false)
            | Some base ->
              let exact =
                try Hashtbl.find exact_net nt.Sta.net_name
                with Not_found -> false
              in
              let worst = if exact then worst_exact else worst_lumped in
              List.iter2
                (fun (s : Sta.sink_timing) (s0 : Sta.sink_timing) ->
                  let rel a b =
                    abs_float (a -. b) /. Float.max 1e-30 (abs_float b)
                  in
                  worst :=
                    Float.max !worst
                      (Float.max
                         (rel s.Sta.arrival s0.Sta.arrival)
                         (rel s.Sta.net_delay s0.Sta.net_delay)))
                nt.Sta.sinks base.Sta.sinks)
          on_r.Sta.nets;
        note "%-10s worst rel drift: exact nets %.3g, lumped nets %.3g" name
          !worst_exact !worst_lumped;
        ignore
          (check
             (Printf.sprintf "%s: exact transforms bit-close (%.3g > 1e-12)"
                name !worst_exact)
             (!worst_exact <= 1e-12));
        ignore
          (check
             (Printf.sprintf "%s: lumped nets within 10%% (%.3g)" name
                !worst_lumped)
             (!worst_lumped <= 0.1));
        (* pattern-tier delta: cold sparse analyze on fresh caches *)
        let pattern_hits reduce =
          let cache = Sta.create_cache () in
          let r =
            Sta.analyze ~model:Sta.Awe_auto ~sparse:true ~jobs:1 ~reduce
              ~cache d
          in
          r.Sta.stats.Awe.Stats.cache_pattern_hits
        in
        let ph_on = pattern_hits true and ph_off = pattern_hits false in
        note "%-10s cold pattern hits: %d reduced vs %d unreduced" name ph_on
          ph_off;
        (name, per_jobs, eliminated, !total_nodes, ratio, !worst_exact,
         !worst_lumped, ph_on, ph_off))
      designs
  in
  (* the ladder is the headline: most of it must vanish, the cold
     analyze must get materially cheaper, and the pattern tier must
     not lose hits to reduction *)
  let ( _, lper, _, _, lratio, _, _, lph_on, lph_off ) =
    match rows with l :: _ -> l | [] -> assert false
  in
  let _, lon1, loff1, _, _ = List.hd lper in
  ignore
    (check
       (Printf.sprintf "ladder eliminates >= 50%% of stage nodes (%.0f%%)"
          (100. *. lratio))
       (lratio >= 0.5));
  ignore
    (check
       (Printf.sprintf
          "ladder reduced cold <= 0.7x unreduced at jobs=1 (%.2fx)"
          (lon1.t_med /. loff1.t_med))
       (lon1.t_med <= 0.7 *. loff1.t_med));
  ignore
    (check
       (Printf.sprintf "ladder pattern hits don't regress (%d vs %d)" lph_on
          lph_off)
       (lph_on >= lph_off));
  claim
    ~paper:"solve the small equivalent circuit, not the extracted one"
    "ladder: %.0f%% of nodes eliminated, cold analyze %.2fx, pattern hits \
     %d vs %d"
    (100. *. lratio)
    (lon1.t_med /. loff1.t_med)
    lph_on lph_off;
  let json_path = "BENCH_sta_reduce.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{ \"scenario\": \"sta_reduce\", \"smoke\": %b, \"cores\": %d, \"reps\": \
     %d,\n\
    \  \"designs\": {\n%s\n  } }\n"
    smoke cores reps
    (String.concat ",\n"
       (List.map
          (fun ( name, per_jobs, eliminated, total, ratio, we, wl, ph_on,
                 ph_off ) ->
            Printf.sprintf
              "    \"%s\": { \"stage_nodes\": %d, \"nodes_eliminated\": %d, \
               \"reduction_ratio\": %.3f,\n\
              \      \"worst_exact_rel\": %.3g, \"worst_lumped_rel\": %.3g,\n\
              \      \"cold_pattern_hits_reduced\": %d, \
               \"cold_pattern_hits_unreduced\": %d,\n\
              \      \"jobs\": {\n%s\n      } }"
              name total eliminated ratio we wl ph_on ph_off
              (String.concat ",\n"
                 (List.map
                    (fun (jobs, on_t, off_t, _, _) ->
                      Printf.sprintf
                        "        \"%d\": { \"reduced_ms\": [%.3f, %.3f, \
                         %.3f], \"unreduced_ms\": [%.3f, %.3f, %.3f], \
                         \"ratio\": %.3f }"
                        jobs (1e3 *. on_t.t_min) (1e3 *. on_t.t_med)
                        (1e3 *. on_t.t_max) (1e3 *. off_t.t_min)
                        (1e3 *. off_t.t_med) (1e3 *. off_t.t_max)
                        (on_t.t_med /. off_t.t_med))
                    per_jobs)))
          rows));
  close_out oc;
  note "wrote %s" json_path;
  if smoke && not !ok then begin
    note "SMOKE FAIL";
    exit 1
  end
  else if not !ok then note "sta_reduce: gates failed (non-smoke, reported)"
  else note "sta_reduce ok"

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("fig7", fig7); ("fig12", fig12); ("fig14", fig14); ("fig15", fig15);
    ("table1", table1); ("fig17", fig17_18); ("fig18", fig17_18);
    ("fig19", fig19); ("fig20_21", fig20_21); ("fig23", fig23);
    ("fig24", fig24); ("table2_fig26", table2_fig26); ("fig26", table2_fig26);
    ("fig27", fig27); ("eq56", eq56); ("scaling", scaling);
    ("ablation", ablation); ("shifted", shifted); ("sta", sta_bench);
    ("sta_batch", sta_batch); ("sta_parallel", fun () -> sta_parallel ());
    ("sta_cache", fun () -> sta_cache_bench ());
    ("sta_scale", fun () -> sta_scale ());
    ("sta_eco", fun () -> sta_eco ());
    ("sta_corners", fun () -> sta_corners ());
    ("sta_reduce", fun () -> sta_reduce ());
    ("lint_scale", fun () -> lint_scale ()); ("verify", verify_bench) ]

let all_in_order =
  [ fig7; fig12; fig14; fig15; table1; fig17_18; fig19; fig20_21; fig23;
    fig24; table2_fig26; fig27; eq56; scaling; ablation; shifted; sta_bench;
    sta_batch; (fun () -> sta_parallel ()); (fun () -> sta_cache_bench ());
    (fun () -> sta_scale ()); (fun () -> sta_eco ());
    (fun () -> sta_corners ());
    (fun () -> sta_reduce ()); (fun () -> lint_scale ()); verify_bench ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let names = List.filter (fun a -> a <> "--smoke") args in
  match names with
  | [] when smoke ->
    (* --smoke alone runs the CI gates *)
    sta_parallel ~smoke ();
    sta_cache_bench ~smoke ();
    sta_scale ~smoke ();
    sta_eco ~smoke ();
    sta_corners ~smoke ();
    sta_reduce ~smoke ();
    lint_scale ~smoke ()
  | [] ->
    Format.printf
      "AWEsim reproduction harness — every table and figure of the paper@.";
    List.iter (fun f -> f ()) all_in_order
  | names ->
    List.iter
      (fun name ->
        match (name, List.assoc_opt name experiments) with
        | "sta_parallel", _ -> sta_parallel ~smoke ()
        | "sta_cache", _ -> sta_cache_bench ~smoke ()
        | "sta_scale", _ -> sta_scale ~smoke ()
        | "sta_eco", _ -> sta_eco ~smoke ()
        | "sta_corners", _ -> sta_corners ~smoke ()
        | "sta_reduce", _ -> sta_reduce ~smoke ()
        | "lint_scale", _ -> lint_scale ~smoke ()
        | _, Some f -> f ()
        | _, None ->
          Format.printf "unknown experiment %S; available:@." name;
          List.iter (fun (n, _) -> Format.printf "  %s@." n) experiments;
          exit 2)
      names
