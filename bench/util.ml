(* Shared helpers for the reproduction benchmarks. *)

open Circuit

(* exact natural frequencies of a circuit: eigenvalues of -G^-1 C *)
let actual_poles sys =
  let g = Mna.g sys and c = Mna.c sys in
  let f = Linalg.Lu.factor g in
  let n = Mna.size sys in
  let m = Linalg.Matrix.create n n in
  for j = 0 to n - 1 do
    let col = Linalg.Lu.solve f (Linalg.Matrix.col c j) in
    for i = 0 to n - 1 do
      m.(i).(j) <- -.col.(i)
    done
  done;
  Linalg.Eigen.circuit_poles m

(* the paper's error measure: L2 difference of the waveforms normalized
   by the L2 norm of the exact waveform's transient part *)
let transient_error exact approx =
  let vf = Waveform.final_value exact in
  let transient =
    Waveform.create exact.Waveform.times
      (Array.map (fun v -> v -. vf) exact.Waveform.values)
  in
  let den = Waveform.l2_norm transient in
  if den = 0. then 0. else Waveform.l2_error exact approx /. den

let simulate sys node ~t_stop ~steps =
  let r = Transim.Transient.simulate sys ~t_stop ~steps in
  Transim.Transient.node_waveform r node

let pp_pole ppf (p : Linalg.Cx.t) =
  if p.Linalg.Cx.im = 0. then Format.fprintf ppf "%12.4e            " p.Linalg.Cx.re
  else Format.fprintf ppf "%12.4e %+.4ej" p.Linalg.Cx.re p.Linalg.Cx.im

let print_pole_table ~title columns =
  (* columns: (header, pole list) list; rows padded with blanks *)
  Format.printf "%s@." title;
  let depth =
    List.fold_left (fun m (_, ps) -> Stdlib.max m (List.length ps)) 0 columns
  in
  Format.printf "  ";
  List.iter (fun (h, _) -> Format.printf "%-28s" h) columns;
  Format.printf "@.";
  for row = 0 to depth - 1 do
    Format.printf "  ";
    List.iter
      (fun (_, ps) ->
        match List.nth_opt ps row with
        | Some p -> Format.printf "%-28s" (Format.asprintf "%a" pp_pole p)
        | None -> Format.printf "%-28s" "")
      columns;
    Format.printf "@."
  done

let section title =
  Format.printf "@.=== %s ===@." title

let claim ~paper fmt =
  Format.printf "  paper:    %s@." paper;
  Format.printf ("  measured: " ^^ fmt ^^ "@.")

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let plot ?(width = 68) ?(height = 14) ~label waves =
  print_string (Waveform.ascii_plot ~width ~height ~label waves)

(* Warm-up + median-of-[reps] wall-clock timing.  One untimed warm-up
   run pages in code and fills allocator arenas, then [reps] timed
   runs; single-shot (and best-of-N) numbers on a shared CI container
   are noise, so the summary keeps the whole spread.  Returns the
   summary and the result of the last timed run (for determinism
   checks on the value the timings belong to). *)
type run_time = {
  t_min : float;
  t_med : float;  (* the headline number *)
  t_max : float;
}

let timed_runs ?(reps = 5) f =
  let last = ref (f ()) (* warm-up *) in
  let samples =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        let r = f () in
        last := r;
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare samples;
  ( { t_min = samples.(0);
      t_med = samples.(reps / 2);
      t_max = samples.(reps - 1) },
    !last )

(* Bechamel wrapper: nanoseconds per run for each named thunk *)
let measure_ns tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped =
    Test.make_grouped ~name:"bench" ~fmt:"%s %s"
      (List.map
         (fun (name, f) -> Test.make ~name (Staged.stage f))
         tests)
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  List.map
    (fun (name, _) ->
      let key = "bench " ^ name in
      match Hashtbl.find_opt results key with
      | Some o -> (
        match Analyze.OLS.estimates o with
        | Some (est :: _) -> (name, est)
        | Some [] | None -> (name, nan))
      | None -> (name, nan))
    tests
